package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/cmd/internal/api"
	"repro/fpva"
	"repro/internal/workerpool" // test files are exempt from apiboundary
)

// workerEnv re-execs the test binary as a solver worker: "solve" serves
// real solves (what fpvaworker does), "hang" accepts a job and blocks
// until canceled or killed — the crash-injection target.
const workerEnv = "FPVAD_TEST_WORKER"

func TestMain(m *testing.M) {
	switch mode := os.Getenv(workerEnv); mode {
	case "":
		os.Exit(m.Run())
	case "solve":
		if err := fpva.ServeSolverWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	case "hang":
		err := workerpool.Serve(context.Background(), os.Stdin, os.Stdout,
			func(ctx context.Context, req []byte, emit func([]byte)) ([]byte, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			})
		if err != nil {
			fmt.Fprintln(os.Stderr, "test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "unknown %s mode %q\n", workerEnv, mode)
		os.Exit(2)
	}
}

func newTestServer(t *testing.T) (*httptest.Server, *fpva.Service) {
	t.Helper()
	svc := fpva.NewService()
	srv := httptest.NewServer(newServer(svc, nil))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func waitDone(t *testing.T, base, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, b := getBody(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status poll: %d %s", code, b)
		}
		var j api.Job
		if err := json.Unmarshal(b, &j); err != nil {
			t.Fatal(err)
		}
		switch j.State {
		case "done", "failed", "canceled":
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return api.Job{}
}

func encodeArray(t *testing.T, rows, cols int) string {
	t.Helper()
	a, err := fpva.NewArray(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fpva.EncodeArray(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestGenerateJobLifecycle drives the smoke-test flow in-process: submit a
// 4x4 generate job, stream its NDJSON progress, and fetch the plan.
func TestGenerateJobLifecycle(t *testing.T) {
	srv, _ := newTestServer(t)
	code, b := postJSON(t, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"generate","array":%s}`, encodeArray(t, 4, 4)))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var j api.Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}
	if j.Kind != "generate" || j.ID == "" {
		t.Fatalf("submit response %+v", j)
	}

	// The events endpoint replays history and follows to the terminal line.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}
	var phases, lines int
	var last api.Job
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		var e api.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if e.Event == "phase-started" || e.Event == "phase-finished" {
			phases++
		}
		if e.Event == "" { // terminal status line
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if phases != 6 {
		t.Errorf("streamed %d phase events, want 6 (got %d lines)", phases, lines)
	}
	if last.State != "done" {
		t.Errorf("terminal stream line %+v", last)
	}

	code, planBytes := getBody(t, srv.URL+"/v1/jobs/"+j.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, planBytes)
	}
	plan, err := fpva.DecodePlan(bytes.NewReader(planBytes))
	if err != nil {
		t.Fatalf("result is not a v1 plan: %v", err)
	}
	if plan.NumVectors() == 0 {
		t.Error("plan has no vectors")
	}
}

// TestPlanRoundTripBitIdentical is the acceptance check: a plan generated
// locally (the bytes fpvatest -o writes) submitted to fpvad comes back
// bit-identical from the plan endpoint.
func TestPlanRoundTripBitIdentical(t *testing.T) {
	srv, _ := newTestServer(t)
	a, err := fpva.BenchmarkArray("5x5")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if err := fpva.EncodePlan(&local, plan); err != nil {
		t.Fatal(err)
	}
	code, b := postJSON(t, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"campaign","plan":%s,"campaign":{"trials":200,"faults":2,"seed":11}}`,
			local.String()))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var j api.Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}
	code, remote := getBody(t, srv.URL+"/v1/jobs/"+j.ID+"/plan")
	if code != http.StatusOK {
		t.Fatalf("plan fetch: %d %s", code, remote)
	}
	if !bytes.Equal(local.Bytes(), remote) {
		t.Error("plan round trip through fpvad is not bit-identical")
	}

	if got := waitDone(t, srv.URL, j.ID); got.State != "done" {
		t.Fatalf("campaign job: %+v", got)
	}
	code, b = getBody(t, srv.URL+"/v1/jobs/"+j.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("campaign result: %d %s", code, b)
	}
	var rep api.CampaignReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Format != "fpva.campaign" || rep.Trials != 200 || rep.Detected != 200 {
		t.Errorf("campaign report %+v", rep)
	}

	// The same campaign replayed locally must agree bit for bit.
	localRes, err := plan.Campaign(context.Background(),
		fpva.WithTrials(200), fpva.WithNumFaults(2), fpva.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if localRes.Detected != rep.Detected || localRes.Sims != rep.Sims {
		t.Errorf("remote campaign diverges: local %+v, remote %+v", localRes, rep)
	}
}

// TestVerifyJob: the verify kind reports empty escape sets on a covered
// array.
func TestVerifyJob(t *testing.T) {
	srv, _ := newTestServer(t)
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fpva.EncodePlan(&buf, plan); err != nil {
		t.Fatal(err)
	}
	code, b := postJSON(t, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"verify","plan":%s,"verify":{"maxPairs":500}}`, buf.String()))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var j api.Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, srv.URL, j.ID); got.State != "done" {
		t.Fatalf("verify job: %+v", got)
	}
	code, b = getBody(t, srv.URL+"/v1/jobs/"+j.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("verify result: %d %s", code, b)
	}
	var rep api.VerifyReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Format != "fpva.verify" || len(rep.SingleEscapes) != 0 || len(rep.DoubleEscapes) != 0 {
		t.Errorf("verify report %+v", rep)
	}
}

// TestDiagnoseJob drives the closed-loop diagnose kind over HTTP: submit
// a plan plus one faulty observation, stream the diagnose ticks, and
// decode the wire diagnosis from the result endpoint.
func TestDiagnoseJob(t *testing.T) {
	srv, _ := newTestServer(t)
	a, err := fpva.NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := fpva.EncodePlan(&wire, plan); err != nil {
		t.Fatal(err)
	}

	// Play the technician: measure vector 0 on a device with a hidden
	// stuck-at-0 fault.
	hidden := []fpva.Fault{{Kind: fpva.StuckAt0, A: plan.Vectors()[0].Open[0]}}
	sim, err := a.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	v0 := a.NewVector(plan.Vectors()[0].Name)
	for _, e := range plan.Vectors()[0].Open {
		if err := v0.SetOpen(e, true); err != nil {
			t.Fatal(err)
		}
	}
	readings, err := sim.Readings(v0, hidden)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(readings)
	if err != nil {
		t.Fatal(err)
	}

	code, b := postJSON(t, srv.URL+"/v1/jobs", fmt.Sprintf(
		`{"kind":"diagnose","plan":%s,"diagnose":{"observations":[{"vector":0,"readings":%s}],"planner":"greedy"}}`,
		wire.String(), rb))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var j api.Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}
	if j.Kind != "diagnose" {
		t.Fatalf("submit response %+v", j)
	}
	if got := waitDone(t, srv.URL, j.ID); got.State != "done" {
		t.Fatalf("diagnose job: %+v", got)
	}

	// The event stream carries one diagnose tick per observation.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ticks := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e api.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Event == "diagnose-tick" {
			ticks++
			if e.Round != 1 || e.Ambiguity <= 0 {
				t.Errorf("diagnose tick %+v", e)
			}
		}
	}
	if ticks != 1 {
		t.Errorf("streamed %d diagnose ticks, want 1", ticks)
	}

	code, b = getBody(t, srv.URL+"/v1/jobs/"+j.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, b)
	}
	d, err := fpva.DecodeDiagnosis(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("result is not a v1 diagnosis: %v", err)
	}
	if !d.Consistent || d.FaultFree {
		t.Errorf("diagnosis consistent=%t faultFree=%t", d.Consistent, d.FaultFree)
	}
	found := false
	for _, fs := range d.Ambiguity {
		if len(fs) == 1 && fs[0] == hidden[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("hidden fault %v missing from ambiguity set %v", hidden[0], d.Ambiguity)
	}

	// Stats surface the diagnose counters and per-kind tallies.
	code, b = getBody(t, srv.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var st api.ServiceStats
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.Diagnoses != 1 || st.SigCacheMisses != 1 {
		t.Errorf("diagnose stats %+v", st)
	}
	if ks := st.Kinds["diagnose"]; ks.Submitted != 1 || ks.Done != 1 {
		t.Errorf("per-kind stats %+v", st.Kinds)
	}

	// Unknown planner names are a 400 at submit time.
	code, b = postJSON(t, srv.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"diagnose","plan":%s,"diagnose":{"planner":"psychic"}}`, wire.String()))
	if code != http.StatusBadRequest {
		t.Errorf("bad planner: %d %s", code, b)
	}
}

// TestSubmitErrors: malformed submissions map to 400 with a JSON error,
// unknown jobs to 404, unfinished results to 409.
func TestSubmitErrors(t *testing.T) {
	srv, svc := newTestServer(t)
	for name, body := range map[string]string{
		"bad json":        `{`,
		"unknown kind":    `{"kind":"mystery"}`,
		"generate no arr": `{"kind":"generate"}`,
		"campaign no pln": `{"kind":"campaign"}`,
		"bad array":       `{"kind":"generate","array":{"format":"fpva.array","version":9,"text":""}}`,
		"bad plan":        `{"kind":"campaign","plan":{"format":"fpva.plan","version":1,"array":"x"}}`,
		"bad engine":      `{"kind":"generate","array":` + encodeArray(t, 3, 3) + `,"generate":{"pathEngine":"nope"}}`,
	} {
		code, b := postJSON(t, srv.URL+"/v1/jobs", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", name, code, b)
		}
		var e map[string]string
		if err := json.Unmarshal(b, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error payload %s", name, b)
		}
	}
	if code, _ := getBody(t, srv.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if code, _ := getBody(t, srv.URL+"/v1/jobs/nope/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", code)
	}

	// A canceled-before-running job reports 409 on result fetch.
	a, _ := fpva.NewArray(3, 3)
	job, err := svc.SubmitGenerate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	<-job.Done()
	if job.State() == fpva.JobCanceled {
		if code, _ := getBody(t, srv.URL+"/v1/jobs/"+job.ID()+"/result"); code != http.StatusConflict {
			t.Errorf("canceled job result: %d, want 409", code)
		}
	}
}

// TestStatsAndList: the observability endpoints reflect submitted work.
func TestStatsAndList(t *testing.T) {
	srv, _ := newTestServer(t)
	arr := encodeArray(t, 4, 4)
	for i := 0; i < 2; i++ {
		code, b := postJSON(t, srv.URL+"/v1/jobs", `{"kind":"generate","array":`+arr+`}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, b)
		}
		var j api.Job
		if err := json.Unmarshal(b, &j); err != nil {
			t.Fatal(err)
		}
		waitDone(t, srv.URL, j.ID)
	}
	code, b := getBody(t, srv.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var st api.ServiceStats
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.JobsSubmitted != 2 || st.JobsDone != 2 {
		t.Errorf("stats jobs %+v", st)
	}
	if st.Solves != 1 || st.CacheHits+st.CacheCoalesced != 1 {
		t.Errorf("identical submissions did not dedup: %+v", st)
	}
	code, b = getBody(t, srv.URL+"/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, b)
	}
	var jobs []api.Job
	if err := json.Unmarshal(b, &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Errorf("listed %d jobs, want 2", len(jobs))
	}
	if code, _ := getBody(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
}

// TestCancelEndpoint cancels a queued job over HTTP.
func TestCancelEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	// A deliberately heavy solve so cancel lands while it is in flight.
	code, b := postJSON(t, srv.URL+"/v1/jobs",
		`{"kind":"generate","array":`+encodeArray(t, 10, 10)+
			`,"generate":{"direct":true,"pathEngine":"ilp-iterative"}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var j api.Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}
	code, b = postJSON(t, srv.URL+"/v1/jobs/"+j.ID+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, b)
	}
	if got := waitDone(t, srv.URL, j.ID); got.State != "canceled" {
		t.Errorf("after cancel: %+v", got)
	}
}

// TestDeleteJobEndpoint is the DELETE /v1/jobs/{id} contract, table-style:
// unknown ids 404, live jobs 409, terminal jobs 200 and then 404 — with
// the per-state stats dropping the job while lifetime tallies keep it.
func TestDeleteJobEndpoint(t *testing.T) {
	srv, svc := newTestServer(t)
	del := func(id string) (int, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	// A terminal job first (on a one-CPU service the live job below would
	// otherwise hold the only worker slot and starve it).
	code, b := postJSON(t, srv.URL+"/v1/jobs", `{"kind":"generate","array":`+encodeArray(t, 4, 4)+`}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var done api.Job
	if err := json.Unmarshal(b, &done); err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv.URL, done.ID)
	// And a live one to 409 against: heavy enough that delete lands
	// mid-solve.
	a, err := fpva.NewArray(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	live, err := svc.SubmitGenerate(context.Background(), a,
		fpva.WithDirectModel(), fpva.WithPathEngine(fpva.PathEngineILPIterative))
	if err != nil {
		t.Fatal(err)
	}
	defer live.Cancel()

	for _, tc := range []struct {
		name string
		id   string
		code int
	}{
		{"unknown id", "nope", http.StatusNotFound},
		{"running job", live.ID(), http.StatusConflict},
		{"terminal job", done.ID, http.StatusOK},
		{"already deleted", done.ID, http.StatusNotFound},
	} {
		if code, b := del(tc.id); code != tc.code {
			t.Errorf("%s: DELETE %s = %d, want %d (%s)", tc.name, tc.id, code, tc.code, b)
		}
	}

	code, b = getBody(t, srv.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var st api.ServiceStats
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.JobsDone != 0 {
		t.Errorf("deleted job still counted done: %+v", st)
	}
	if st.JobsSubmitted != 2 || st.Kinds["generate"].Done != 1 {
		t.Errorf("lifetime counters must survive deletion: %+v", st)
	}
	if n := len(svc.Jobs()); n != 1 {
		t.Errorf("tracking %d jobs after delete, want 1 (the live one)", n)
	}
}

// newSubprocessServer boots a daemon whose solves run in re-execs of the
// test binary (workerEnv selects the worker behavior).
func newSubprocessServer(t *testing.T, mode string) (*httptest.Server, *fpva.Service) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv(workerEnv, mode)
	svc := fpva.NewService(
		fpva.WithSolverExecutor(fpva.ExecSubprocess),
		fpva.WithWorkerCommand(exe),
		fpva.WithSolverPoolSize(1),
	)
	srv := httptest.NewServer(newServer(svc, nil))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

// normalizeWire strips the five timing fields from a plan's wire bytes
// (they are measurements, not content) and re-marshals the rest into a
// canonical form for comparison.
func normalizeWire(t *testing.T, wire []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(wire, &m); err != nil {
		t.Fatalf("plan wire does not parse: %v", err)
	}
	stats, ok := m["stats"].(map[string]any)
	if !ok {
		t.Fatalf("plan wire has no stats object: %.200s", wire)
	}
	for _, k := range []string{"tp_ns", "tc_ns", "tl_ns", "t_ns", "solver_wall_ns"} {
		delete(stats, k)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runGenerate submits one generate job and returns its plan wire bytes.
func runGenerate(t *testing.T, base, arrayJSON string) []byte {
	t.Helper()
	code, b := postJSON(t, base+"/v1/jobs", `{"kind":"generate","array":`+arrayJSON+`}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var j api.Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, base, j.ID); got.State != "done" {
		t.Fatalf("generate job: %+v", got)
	}
	code, wire := getBody(t, base+"/v1/jobs/"+j.ID+"/plan")
	if code != http.StatusOK {
		t.Fatalf("plan fetch: %d %s", code, wire)
	}
	return wire
}

// TestSubprocessDaemonPlanIdentical is the executor-transparency
// acceptance check over HTTP: the same array generated by a
// subprocess-mode daemon and an in-process one serves the same plan
// bytes up to timing statistics.
func TestSubprocessDaemonPlanIdentical(t *testing.T) {
	subSrv, _ := newSubprocessServer(t, "solve")
	inSrv, _ := newTestServer(t)
	arr := encodeArray(t, 5, 4)
	wireSub := runGenerate(t, subSrv.URL, arr)
	wireIn := runGenerate(t, inSrv.URL, arr)
	if normalizeWire(t, wireSub) != normalizeWire(t, wireIn) {
		t.Error("subprocess-mode plan differs from in-process beyond timing stats")
	}
	code, b := getBody(t, subSrv.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var st api.ServiceStats
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.SolverExecutor != "subprocess" || st.WorkerSlots != 1 || st.WorkerSpawns < 1 {
		t.Errorf("worker stats not surfaced: %+v", st)
	}
}

// childPids lists direct child processes via /proc — in these tests the
// only children are pool workers.
func childPids(t *testing.T) []int {
	t.Helper()
	self := os.Getpid()
	stats, err := filepath.Glob("/proc/[0-9]*/stat")
	if err != nil {
		t.Fatal(err)
	}
	var pids []int
	for _, path := range stats {
		b, err := os.ReadFile(path)
		if err != nil {
			continue // raced with process exit
		}
		// /proc/<pid>/stat: "pid (comm) state ppid ..."; comm may hold
		// spaces, so parse from after the last ')'.
		s := string(b)
		i := strings.LastIndexByte(s, ')')
		if i < 0 {
			continue
		}
		fields := strings.Fields(s[i+1:])
		if len(fields) < 2 {
			continue
		}
		if ppid, err := strconv.Atoi(fields[1]); err != nil || ppid != self {
			continue
		}
		pid, err := strconv.Atoi(filepath.Base(filepath.Dir(path)))
		if err == nil {
			pids = append(pids, pid)
		}
	}
	return pids
}

// TestSubprocessDaemonKill9KeepsServing is the crash-isolation
// acceptance check end to end: kill -9 the worker mid-solve, exactly
// that job fails, /healthz stays green, and the restarted pool serves
// the next solve.
func TestSubprocessDaemonKill9KeepsServing(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("worker pid discovery reads /proc")
	}
	srv, _ := newSubprocessServer(t, "hang")
	code, b := postJSON(t, srv.URL+"/v1/jobs", `{"kind":"generate","array":`+encodeArray(t, 4, 4)+`}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, b)
	}
	var j api.Job
	if err := json.Unmarshal(b, &j); err != nil {
		t.Fatal(err)
	}

	// Wait until the hang worker holds the job, then shoot it.
	pid := 0
	deadline := time.Now().Add(10 * time.Second)
	for pid == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never went busy")
		}
		_, sb := getBody(t, srv.URL+"/v1/stats")
		var st api.ServiceStats
		if err := json.Unmarshal(sb, &st); err != nil {
			t.Fatal(err)
		}
		if st.WorkersBusy == 1 {
			if pids := childPids(t); len(pids) == 1 {
				pid = pids[0]
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	if got := waitDone(t, srv.URL, j.ID); got.State != "failed" || !strings.Contains(got.Error, "worker crashed") {
		t.Fatalf("after kill -9: %+v, want failed with a worker-crash error", got)
	}
	if code, _ := getBody(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz after worker crash: %d", code)
	}

	// The daemon keeps serving: flip the worker mode to a real solver (the
	// replacement spawns with the current environment) and run a solve.
	t.Setenv(workerEnv, "solve")
	runGenerate(t, srv.URL, encodeArray(t, 3, 3))

	code, b = getBody(t, srv.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, b)
	}
	var st api.ServiceStats
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.JobsFailed != 1 || st.JobsDone != 1 || st.WorkerRestarts < 1 {
		t.Errorf("crash accounting: %+v", st)
	}
}

// TestParseFlags is the table-driven exit-code contract for the daemon's
// flag surface.
func TestParseFlags(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"defaults", nil, 0},
		{"addr", []string{"-addr", ":0"}, 0},
		{"bad flag", []string{"-nope"}, 2},
		{"negative workers", []string{"-workers", "-1"}, 2},
		{"negative cache", []string{"-cache-mb", "-5"}, 2},
		{"stray arg", []string{"extra"}, 2},
		{"pprof loopback ip", []string{"-pprof-addr", "127.0.0.1:0"}, 0},
		{"pprof localhost", []string{"-pprof-addr", "localhost:6060"}, 0},
		{"pprof public addr", []string{"-pprof-addr", "0.0.0.0:6060"}, 2},
		{"pprof missing port", []string{"-pprof-addr", "127.0.0.1"}, 2},
		{"solver exec subprocess", []string{"-solver-exec", "subprocess"}, 0},
		{"solver exec in-process", []string{"-solver-exec", "in-process"}, 0},
		{"bad solver exec", []string{"-solver-exec", "alien"}, 2},
		{"solver tuning", []string{"-solver-workers", "4", "-worker-mem-mb", "512", "-solver-timeout", "5m", "-job-ttl", "1h"}, 0},
		{"negative solver workers", []string{"-solver-workers", "-1"}, 2},
		{"negative worker mem", []string{"-worker-mem-mb", "-1"}, 2},
		{"bad solver timeout", []string{"-solver-timeout", "soon"}, 2},
		{"negative job ttl", []string{"-job-ttl", "-1s"}, 2},
	} {
		var errb strings.Builder
		_, err := parseFlags(tc.args, &errb)
		if got := exitCode(err); got != tc.code {
			t.Errorf("%s: exit %d, want %d (err %v)", tc.name, got, tc.code, err)
		}
	}
}
