// Command fpvad serves the FPVA pipeline over HTTP: one long-lived
// fpva.Service (plan cache, singleflight dedup, bounded worker pool)
// behind a small JSON job API, so fpvatest/fpvasim workflows can run
// against a shared remote engine instead of re-solving per process.
//
// Usage:
//
//	fpvad                          serve on 127.0.0.1:8471
//	fpvad -addr :9000 -workers 8   tune the bind address and worker pool
//	fpvad -cache-mb 256            raise the plan-cache byte budget
//	fpvad -cache-dir /var/lib/fpvad  persist plans on disk: a restarted
//	                               daemon serves bit-identical bytes for
//	                               everything it solved before
//	fpvad -pprof-addr 127.0.0.1:6060  expose net/http/pprof (loopback only)
//	fpvad -solver-exec subprocess  run solves in fpvaworker subprocesses
//	fpvad -solver-exec subprocess -solver-workers 4 -worker-mem-mb 512 \
//	      -solver-timeout 5m       size and resource-limit the worker pool
//	fpvad -job-ttl 1h              expire terminal jobs after an hour
//	fpvad -token-file tokens -rate 10 -burst 20 -max-pending 256 \
//	      -job-timeout 10m         multi-tenant admission control: bearer
//	                               auth, per-client rate limits (429 +
//	                               Retry-After), bounded job queue (503)
//	fpvad -config fpvad.json       read all of the above from a JSON file
//	                               (flags override it); -validate checks
//	                               the configuration and exits
//
// With -cache-dir the content-addressed plan cache is written through
// to disk (atomic temp-file+rename, checksums verified on read, torn
// entries quarantined), so the cache survives kill -9 at any instant.
// On disk trouble (ENOSPC, EIO) the store degrades to memory-only mode
// and re-probes with backoff; /healthz reports "degraded" with the
// reason — still with HTTP 200 unless ?strict=1 asks for a 503.
//
// With -solver-exec subprocess every generate solve runs in a supervised
// fpvaworker process (found next to the fpvad binary, or via PATH;
// override with -solver-worker-bin): a crashing or runaway solver fails
// only its own job, the pool restarts the worker, and the daemon keeps
// serving. Plan bytes are identical to in-process mode up to timing
// statistics.
//
// API (all payloads JSON; plans and arrays use the v1 wire format):
//
//	POST /v1/jobs                submit {"kind":"generate"|"campaign"|"verify"|"diagnose", ...}
//	GET  /v1/jobs                list jobs
//	GET  /v1/jobs/{id}           job status
//	POST /v1/jobs/{id}/cancel    cancel a job
//	DELETE /v1/jobs/{id}         forget a terminal job (409 while running)
//	GET  /v1/jobs/{id}/events    NDJSON progress stream (replays, then follows)
//	GET  /v1/jobs/{id}/result    generate: the plan; campaign/verify: a report;
//	                             diagnose: the diagnosis in the v1 wire format
//	GET  /v1/jobs/{id}/plan      the job's plan (result or submitted input)
//	GET  /v1/stats               service counters (cache, store, workers,
//	                             admission)
//	GET  /healthz                liveness: JSON status document, 200 for
//	                             both "ok" and "degraded" (?strict=1
//	                             turns degraded into 503); exempt from
//	                             auth and rate limits
//
// Exit codes: 0 on clean shutdown (SIGINT/SIGTERM), 1 on runtime failure,
// 2 on a usage error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cmd/internal/api"
	"repro/cmd/internal/cli"
	"repro/fpva"
)

// maxBodyBytes bounds submitted payloads (a 30x30 plan is ~1 MiB).
const maxBodyBytes = 32 << 20

type options struct {
	addr       string
	workers    int
	cacheMB    int
	cacheDir   string
	cacheDirMB int
	pprofAddr  string

	solverExecName string
	solverExec     fpva.SolverExecutor
	solverWorkers  int
	workerBin      string
	workerMemMB    int
	solverTimeout  time.Duration
	jobTTL         time.Duration
	jobTimeout     time.Duration

	tokenFile  string
	ratePerSec float64
	rateBurst  int
	maxPending int

	configPath string
	validate   bool
}

// defaultOptions is the base layer of the precedence stack: defaults,
// then the config file, then command-line flags.
func defaultOptions() options {
	return options{
		addr:           "127.0.0.1:8471",
		cacheMB:        64,
		cacheDirMB:     256,
		solverExecName: "in-process",
	}
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	opt, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	if opt.validate {
		if err := checkConfig(opt); err != nil {
			fmt.Fprintln(stderr, "fpvad:", err)
			return exitCode(err)
		}
		fmt.Fprintln(stdout, "fpvad: configuration ok")
		return 0
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, stdout, opt); err != nil {
		fmt.Fprintln(stderr, "fpvad:", err)
		return exitCode(err)
	}
	return 0
}

// checkConfig runs the validations that need I/O (the pure flag checks
// already ran in parseFlags): the token file must load. -validate uses
// it; run performs the same loads for real.
func checkConfig(opt options) error {
	if opt.tokenFile != "" {
		if _, err := loadTokenFile(opt.tokenFile); err != nil {
			return usagef("-token-file: %v", err)
		}
	}
	return nil
}

// usagef / exitCode alias the repo-wide CLI exit-code contract
// (cmd/internal/cli): usage 2, deadline 2, runtime 1, success 0.
var (
	usagef   = cli.Usagef
	exitCode = cli.ExitCode
)

func parseFlags(args []string, stderr io.Writer) (options, error) {
	// The config file (found by a pre-scan) seeds the flag defaults, so
	// "flags override file" falls out of flag.Parse itself.
	opt := defaultOptions()
	cfgPath, err := scanConfigArg(args)
	if err != nil {
		fmt.Fprintln(stderr, "fpvad:", err)
		return opt, usagef("%v", err)
	}
	if cfgPath != "" {
		if err := applyConfigFile(cfgPath, &opt); err != nil {
			fmt.Fprintln(stderr, "fpvad:", err)
			return opt, usagef("%v", err)
		}
	}
	fs := flag.NewFlagSet("fpvad", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&opt.configPath, "config", cfgPath, "JSON config file; flags given on the command line override it")
	fs.BoolVar(&opt.validate, "validate", false, "parse and check the configuration (config file, flags, token file), then exit")
	fs.StringVar(&opt.addr, "addr", opt.addr, "listen address (use :0 for an ephemeral port)")
	fs.IntVar(&opt.workers, "workers", opt.workers, "concurrent jobs (0 = all CPUs)")
	fs.IntVar(&opt.cacheMB, "cache-mb", opt.cacheMB, "plan-cache byte budget in MiB (0 disables caching)")
	fs.StringVar(&opt.cacheDir, "cache-dir", opt.cacheDir, "persist the plan cache in this directory (empty = memory only)")
	fs.IntVar(&opt.cacheDirMB, "cache-dir-mb", opt.cacheDirMB, "on-disk plan-store byte budget in MiB")
	fs.StringVar(&opt.pprofAddr, "pprof-addr", opt.pprofAddr, "serve net/http/pprof on this loopback address (empty = disabled)")
	fs.StringVar(&opt.solverExecName, "solver-exec", opt.solverExecName, "solver executor: in-process or subprocess")
	fs.IntVar(&opt.solverWorkers, "solver-workers", opt.solverWorkers, "subprocess-mode worker pool size (0 = the -workers value)")
	fs.StringVar(&opt.workerBin, "solver-worker-bin", opt.workerBin, "solver worker binary (empty = fpvaworker next to fpvad, then PATH)")
	fs.IntVar(&opt.workerMemMB, "worker-mem-mb", opt.workerMemMB, "per-worker soft memory ceiling in MiB, hard RSS kill at twice that (0 = unlimited)")
	fs.DurationVar(&opt.solverTimeout, "solver-timeout", opt.solverTimeout, "per-solve deadline, e.g. 5m (0 = none)")
	fs.DurationVar(&opt.jobTTL, "job-ttl", opt.jobTTL, "drop terminal jobs from tracking after this long, e.g. 1h (0 = keep)")
	fs.DurationVar(&opt.jobTimeout, "job-timeout", opt.jobTimeout, "per-job lifetime bound, queue wait included, e.g. 10m (0 = none)")
	fs.StringVar(&opt.tokenFile, "token-file", opt.tokenFile, "bearer-token credential file, one name:token per line (empty = no auth)")
	fs.Float64Var(&opt.ratePerSec, "rate", opt.ratePerSec, "per-client sustained request rate limit in req/s (0 = unlimited)")
	fs.IntVar(&opt.rateBurst, "burst", opt.rateBurst, "per-client rate-limit burst size (0 = 1)")
	fs.IntVar(&opt.maxPending, "max-pending", opt.maxPending, "admission bound: max jobs queued or running before submissions shed with 503 (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return opt, err
		}
		return opt, usagef("%v", err)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fpvad: unexpected argument %q\n", fs.Arg(0))
		return opt, usagef("unexpected argument %q", fs.Arg(0))
	}
	if opt.pprofAddr != "" {
		if err := checkLoopback(opt.pprofAddr); err != nil {
			fmt.Fprintln(stderr, "fpvad:", err)
			return opt, usagef("%v", err)
		}
	}
	exec, err := fpva.ParseSolverExecutor(opt.solverExecName)
	if err != nil {
		fmt.Fprintf(stderr, "fpvad: -solver-exec %q: want in-process or subprocess\n", opt.solverExecName)
		return opt, usagef("-solver-exec %q", opt.solverExecName)
	}
	opt.solverExec = exec
	if opt.ratePerSec < 0 {
		fmt.Fprintln(stderr, "fpvad: -rate must be >= 0")
		return opt, usagef("-rate must be >= 0")
	}
	for _, iv := range []struct {
		name string
		v    int
	}{
		{"-workers", opt.workers},
		{"-cache-mb", opt.cacheMB},
		{"-cache-dir-mb", opt.cacheDirMB},
		{"-solver-workers", opt.solverWorkers},
		{"-worker-mem-mb", opt.workerMemMB},
		{"-solver-timeout", int(opt.solverTimeout)},
		{"-job-ttl", int(opt.jobTTL)},
		{"-job-timeout", int(opt.jobTimeout)},
		{"-burst", opt.rateBurst},
		{"-max-pending", opt.maxPending},
	} {
		if iv.v < 0 {
			fmt.Fprintf(stderr, "fpvad: %s must be >= 0\n", iv.name)
			return opt, usagef("%s must be >= 0", iv.name)
		}
	}
	return opt, nil
}

// checkLoopback rejects pprof bind addresses that would expose the
// profiling endpoints (heap contents, goroutine dumps) beyond the local
// machine.
func checkLoopback(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-pprof-addr %q: %v", addr, err)
	}
	if host == "localhost" {
		return nil
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsLoopback() {
		return nil
	}
	return fmt.Errorf("-pprof-addr %q is not loopback; profiling is local-only", addr)
}

func run(ctx context.Context, w io.Writer, opt options) error {
	svcOpts := []fpva.ServiceOption{fpva.WithCacheBytes(int64(opt.cacheMB) << 20)}
	if opt.workers > 0 {
		svcOpts = append(svcOpts, fpva.WithServiceWorkers(opt.workers))
	}
	svcOpts = append(svcOpts, fpva.WithSolverExecutor(opt.solverExec))
	if opt.workerBin != "" {
		svcOpts = append(svcOpts, fpva.WithWorkerCommand(opt.workerBin))
	}
	if opt.solverWorkers > 0 {
		svcOpts = append(svcOpts, fpva.WithSolverPoolSize(opt.solverWorkers))
	}
	if opt.workerMemMB > 0 {
		svcOpts = append(svcOpts, fpva.WithWorkerMemLimitMB(opt.workerMemMB))
	}
	if opt.solverTimeout > 0 {
		svcOpts = append(svcOpts, fpva.WithSolverTimeout(opt.solverTimeout))
	}
	if opt.jobTTL > 0 {
		svcOpts = append(svcOpts, fpva.WithJobTTL(opt.jobTTL))
	}
	if opt.cacheDir != "" {
		svcOpts = append(svcOpts, fpva.WithCacheDir(opt.cacheDir),
			fpva.WithDiskCacheBytes(int64(opt.cacheDirMB)<<20))
	}
	if opt.maxPending > 0 {
		svcOpts = append(svcOpts, fpva.WithMaxPending(opt.maxPending))
	}
	if opt.jobTimeout > 0 {
		svcOpts = append(svcOpts, fpva.WithJobTimeout(opt.jobTimeout))
	}
	var tokens map[string]string
	if opt.tokenFile != "" {
		var err error
		if tokens, err = loadTokenFile(opt.tokenFile); err != nil {
			return usagef("-token-file: %v", err)
		}
	}
	adm := newAdmission(tokens, opt.ratePerSec, opt.rateBurst)
	svc := fpva.NewService(svcOpts...)
	defer svc.Close()
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler: adm.wrap(newServer(svc, adm)),
		// Slow-loris guard: a client must finish its request headers
		// promptly or lose the connection (bodies are already bounded by
		// maxBodyBytes).
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(w, "fpvad: listening on http://%s (%d workers, %d MiB plan cache, %v solver)\n",
		ln.Addr(), svc.Workers(), opt.cacheMB, opt.solverExec)
	if opt.cacheDir != "" {
		fmt.Fprintf(w, "fpvad: durable plan store in %s (%d MiB)\n", opt.cacheDir, opt.cacheDirMB)
	}
	if adm != nil {
		fmt.Fprintf(w, "fpvad: admission control: auth=%v rate=%g/s burst=%d\n",
			tokens != nil, opt.ratePerSec, opt.rateBurst)
	}
	var pprofSrv *http.Server
	if opt.pprofAddr != "" {
		pln, err := net.Listen("tcp", opt.pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		// The job API runs on its own mux, so the default mux carries only
		// the net/http/pprof registrations — serve it on the loopback-only
		// profiling listener.
		pprofSrv = &http.Server{Handler: http.DefaultServeMux}
		fmt.Fprintf(w, "fpvad: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go pprofSrv.Serve(pln)
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		// Cancel the jobs first: event streams of running jobs end with a
		// terminal status line instead of stalling Shutdown until its
		// timeout severs them mid-flight.
		svc.Close()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		if pprofSrv != nil {
			pprofSrv.Shutdown(shutCtx)
		}
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Serve returns as soon as Shutdown is called; wait for the in-flight
	// requests to actually drain (bounded by the Shutdown timeout) before
	// tearing the service down.
	<-shutdownDone
	fmt.Fprintln(w, "fpvad: shut down")
	return nil
}

// server routes the job API onto one fpva.Service. adm (may be nil)
// supplies the admission counters for /v1/stats; the middleware itself
// wraps the whole handler in run.
type server struct {
	svc *fpva.Service
	adm *admission
}

func newServer(svc *fpva.Service, adm *admission) http.Handler {
	s := &server{svc: svc, adm: adm}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.delete)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	mux.HandleFunc("GET /v1/jobs/{id}/plan", s.plan)
	return mux
}

// healthz is the liveness document. A degraded plan store (daemon still
// serves, memory-only) keeps the 200 so load balancers don't flap;
// ?strict=1 opts orchestrators into a 503 they can drain on.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	h := api.Health{
		Status: "ok",
		Workers: &api.HealthWorkers{
			Slots:    st.WorkerSlots,
			Executor: st.SolverExecutor,
			Alive:    st.WorkersAlive,
			Busy:     st.WorkersBusy,
		},
	}
	if h.Workers.Slots == 0 {
		h.Workers.Slots = s.svc.Workers()
	}
	if h.Workers.Executor == "" {
		h.Workers.Executor = "in-process"
	}
	if st.Store.Mode != "" {
		h.Store = &api.HealthStore{Mode: st.Store.Mode, Reason: st.Store.Reason}
		if st.Store.Mode == "degraded" {
			h.Status = "degraded"
		}
	}
	status := http.StatusOK
	if h.Status != "ok" && r.URL.Query().Get("strict") == "1" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	authFailures, rateLimited := s.adm.counters()
	out := api.ServiceStats{
		JobsSubmitted: st.JobsSubmitted,
		JobsPending:   st.JobsPending, JobsRunning: st.JobsRunning,
		JobsDone: st.JobsDone, JobsFailed: st.JobsFailed, JobsCanceled: st.JobsCanceled,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses, CacheCoalesced: st.CacheCoalesced,
		CacheEntries: st.CacheEntries, CacheBytes: st.CacheBytes, CacheCapBytes: st.CacheCapBytes,
		Solves: st.Solves, SolverWallNs: st.SolverWall.Nanoseconds(),
		Campaigns: st.Campaigns, CampaignWallNs: st.CampaignWall.Nanoseconds(),
		Verifies:  st.Verifies,
		Diagnoses: st.Diagnoses, DiagnoseWallNs: st.DiagnoseWall.Nanoseconds(),
		SigCacheHits: st.SigCacheHits, SigCacheMisses: st.SigCacheMisses,
		SolverExecutor: st.SolverExecutor,
		WorkerSlots:    st.WorkerSlots, WorkersAlive: st.WorkersAlive, WorkersBusy: st.WorkersBusy,
		WorkerSpawns: st.WorkerSpawns, WorkerRestarts: st.WorkerRestarts, WorkerKills: st.WorkerKills,
		JobsShed:     st.JobsShed,
		AuthFailures: authFailures, RateLimited: rateLimited,
		Kinds: kindStats(st.Kinds),
	}
	if st.Store.Mode != "" {
		out.Store = &api.StoreStats{
			Mode: st.Store.Mode, Reason: st.Store.Reason,
			Entries: st.Store.Entries, Bytes: st.Store.Bytes, CapBytes: st.Store.CapBytes,
			Hits: st.Store.Hits, Misses: st.Store.Misses,
			Writes: st.Store.Writes, WriteErrors: st.Store.WriteErrors,
			SkippedWrites: st.Store.SkippedWrites, ReadErrors: st.Store.ReadErrors,
			Quarantined: st.Store.Quarantined, Evictions: st.Store.Evictions,
			Trips: st.Store.Trips, Recoveries: st.Store.Recoveries,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// kindStats converts the per-kind tallies onto their wire mirror.
func kindStats(in map[string]fpva.JobKindStats) map[string]api.KindStats {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]api.KindStats, len(in))
	for k, v := range in {
		out[k] = api.KindStats{Submitted: v.Submitted, Done: v.Done, Failed: v.Failed, Canceled: v.Canceled}
	}
	return out
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var req api.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parse request: %w", err))
		return
	}
	var job *fpva.Job
	switch req.Kind {
	case "generate":
		job, err = s.submitGenerate(req)
	case "campaign", "verify", "diagnose":
		job, err = s.submitPlanJob(req)
	default:
		err = fmt.Errorf("unknown job kind %q (want generate, campaign, verify or diagnose)", req.Kind)
	}
	if err != nil {
		httpError(w, statusForSubmitError(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, api.JobStatus(job))
}

// statusForSubmitError: malformed payloads are the client's fault; a
// closed service or a full job queue (WithMaxPending shedding) is a
// server-side 503 the client should back off and retry.
func statusForSubmitError(err error) int {
	if errors.Is(err, fpva.ErrServiceClosed) || errors.Is(err, fpva.ErrQueueFull) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func (s *server) submitGenerate(req api.SubmitRequest) (*fpva.Job, error) {
	if len(req.Array) == 0 {
		return nil, fmt.Errorf("generate job needs an %q payload", "array")
	}
	a, err := fpva.DecodeArray(bytes.NewReader(req.Array))
	if err != nil {
		return nil, err
	}
	var opts []fpva.GenOption
	if p := req.Generate; p != nil {
		if p.Direct {
			opts = append(opts, fpva.WithDirectModel())
		}
		if p.Block > 0 {
			opts = append(opts, fpva.WithBlockSize(p.Block))
		}
		if p.SkipLeakage {
			opts = append(opts, fpva.WithoutLeakage())
		}
		if p.SolverWorkers > 0 {
			opts = append(opts, fpva.WithSolverWorkers(p.SolverWorkers))
		}
		if p.PathEngine != "" {
			eng, err := fpva.ParsePathEngine(p.PathEngine)
			if err != nil {
				return nil, err
			}
			opts = append(opts, fpva.WithPathEngine(eng))
		}
		if p.CutEngine != "" {
			eng, err := fpva.ParseCutEngine(p.CutEngine)
			if err != nil {
				return nil, err
			}
			opts = append(opts, fpva.WithCutEngine(eng))
		}
	}
	// Jobs outlive the submitting request: the API's cancellation surface
	// is POST /v1/jobs/{id}/cancel, not the HTTP connection.
	return s.svc.SubmitGenerate(context.Background(), a, opts...)
}

func (s *server) submitPlanJob(req api.SubmitRequest) (*fpva.Job, error) {
	if len(req.Plan) == 0 {
		return nil, fmt.Errorf("%s job needs a %q payload", req.Kind, "plan")
	}
	plan, err := fpva.DecodePlan(bytes.NewReader(req.Plan))
	if err != nil {
		return nil, err
	}
	if req.Kind == "verify" {
		maxPairs := 0
		if req.Verify != nil {
			maxPairs = req.Verify.MaxPairs
		}
		return s.svc.SubmitVerify(context.Background(), plan, maxPairs)
	}
	if req.Kind == "diagnose" {
		return s.submitDiagnose(plan, req.Diagnose)
	}
	var opts []fpva.CampaignOption
	if p := req.Campaign; p != nil {
		if p.Trials > 0 {
			opts = append(opts, fpva.WithTrials(p.Trials))
		}
		if p.Faults > 0 {
			opts = append(opts, fpva.WithNumFaults(p.Faults))
		}
		if p.Seed != 0 {
			opts = append(opts, fpva.WithSeed(p.Seed))
		}
		if p.Workers > 0 {
			opts = append(opts, fpva.WithCampaignWorkers(p.Workers))
		}
		if p.MaxEscapes > 0 {
			opts = append(opts, fpva.WithMaxEscapes(p.MaxEscapes))
		}
		if p.Leaks {
			opts = append(opts, fpva.WithLeakFaults())
		}
	}
	return s.svc.SubmitCampaign(context.Background(), plan, opts...)
}

// submitDiagnose maps the wire params onto fpva diagnose options and
// submits the job. Observation readings are already fresh slices from the
// JSON decode, so the service's own deep copy is the only one retained.
func (s *server) submitDiagnose(plan *fpva.Plan, p *api.DiagnoseParams) (*fpva.Job, error) {
	var obs []fpva.Observation
	var opts []fpva.DiagnoseOption
	if p != nil {
		for _, o := range p.Observations {
			obs = append(obs, fpva.Observation{Vector: o.Vector, Readings: o.Readings})
		}
		if p.Planner != "" {
			pl, err := fpva.ParseProbePlanner(p.Planner)
			if err != nil {
				return nil, err
			}
			opts = append(opts, fpva.WithProbePlanner(pl))
		}
		if p.Engine != "" {
			eng, err := fpva.ParseCampaignEngine(p.Engine)
			if err != nil {
				return nil, err
			}
			opts = append(opts, fpva.WithDiagnoseEngine(eng))
		}
		if p.Workers > 0 {
			opts = append(opts, fpva.WithDiagnoseWorkers(p.Workers))
		}
		if p.Budget > 0 {
			opts = append(opts, fpva.WithProbeBudget(p.Budget))
		}
		if p.MaxDoubles > 0 {
			opts = append(opts, fpva.WithDoubleFaultCandidates(p.MaxDoubles))
		}
		if p.NoLeaks {
			opts = append(opts, fpva.WithoutLeakCandidates())
		}
	}
	return s.svc.SubmitDiagnose(context.Background(), plan, obs, opts...)
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	jobs := s.svc.Jobs()
	out := make([]api.Job, len(jobs))
	for i, j := range jobs {
		out[i] = api.JobStatus(j)
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves {id} or writes a 404.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) (*fpva.Job, bool) {
	id := r.PathValue("id")
	j, ok := s.svc.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
	}
	return j, ok
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, api.JobStatus(j))
	}
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, api.JobStatus(j))
}

// delete forgets a terminal job: its id stops resolving and it leaves
// the per-state stats (lifetime counters keep it). Deleting a job that
// is still pending or running is a 409 — cancel it first.
func (s *server) delete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !s.svc.Forget(j.ID()) {
		// Known but not forgettable: the job has not reached a terminal
		// state (a concurrent Forget losing the race lands here too, and
		// 409 is still an honest answer: retry resolves it to a 404).
		httpError(w, http.StatusConflict,
			fmt.Errorf("job %s is %v; cancel it or wait before deleting", j.ID(), j.State()))
		return
	}
	writeJSON(w, http.StatusOK, api.JobStatus(j))
}

// events streams the job's progress as NDJSON: every recorded event from
// the start (so late watchers replay history), live events as they happen,
// and a terminal status line once the job finishes.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for e := range j.Stream(r.Context()) {
		if enc.Encode(api.EventStatus(e)) != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if r.Context().Err() != nil {
		return
	}
	enc.Encode(api.JobStatus(j))
	if flusher != nil {
		flusher.Flush()
	}
}

// notDone writes the appropriate error for a job whose result is not
// fetchable yet (409 while in flight, 500/409 for failed/canceled runs).
func notDone(w http.ResponseWriter, j *fpva.Job) bool {
	switch j.State() {
	case fpva.JobDone:
		return false
	case fpva.JobFailed:
		httpError(w, http.StatusInternalServerError, j.Err())
	case fpva.JobCanceled:
		httpError(w, http.StatusConflict, fmt.Errorf("job %s was canceled", j.ID()))
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %v; poll until done", j.ID(), j.State()))
	}
	return true
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok || notDone(w, j) {
		return
	}
	switch j.Kind() {
	case fpva.JobGenerate:
		s.writePlan(w, j)
	case fpva.JobCampaign:
		res, err := j.Campaign()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		rep := api.CampaignReport{
			Format: "fpva.campaign", Version: fpva.CodecVersion,
			Trials: res.Trials, Detected: res.Detected,
			Rate: res.DetectionRate(), Sims: res.Sims,
		}
		for _, esc := range res.Escapes {
			fs := make([]api.Fault, len(esc))
			for i, f := range esc {
				fs[i] = api.FaultStatus(f)
			}
			rep.Escapes = append(rep.Escapes, fs)
		}
		writeJSON(w, http.StatusOK, rep)
	case fpva.JobVerify:
		res, err := j.Verify()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		rep := api.VerifyReport{
			Format: "fpva.verify", Version: fpva.CodecVersion,
			SingleEscapes: []api.Fault{}, DoubleEscapes: [][2]api.Fault{},
		}
		for _, f := range res.SingleEscapes {
			rep.SingleEscapes = append(rep.SingleEscapes, api.FaultStatus(f))
		}
		for _, pair := range res.DoubleEscapes {
			rep.DoubleEscapes = append(rep.DoubleEscapes,
				[2]api.Fault{api.FaultStatus(pair[0]), api.FaultStatus(pair[1])})
		}
		writeJSON(w, http.StatusOK, rep)
	case fpva.JobDiagnose:
		d, err := j.Diagnosis()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		// Serve the diagnosis in its v1 wire format (like /plan serves
		// plans): curl output is DecodeDiagnosis-ready with no daemon-side
		// re-shaping to drift from the codec.
		var buf bytes.Buffer
		if err := fpva.EncodeDiagnosis(&buf, d); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
		w.WriteHeader(http.StatusOK)
		w.Write(buf.Bytes())
	}
}

// plan serves the job's plan in the v1 wire format: the generated result
// for generate jobs, the submitted input for campaign/verify jobs (the
// round-trip guarantee: the bytes are identical to re-encoding the upload).
func (s *server) plan(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if j.Kind() == fpva.JobGenerate && notDone(w, j) {
		return
	}
	s.writePlan(w, j)
}

// writePlan serves the job's plan in the v1 wire format straight from the
// service's cached encoding (PlanBytes): the bytes were produced once when
// the solve finished, so a fetch is a single Write with no re-encode.
func (s *server) writePlan(w http.ResponseWriter, j *fpva.Job) {
	wire, err := j.PlanBytes()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(wire)))
	w.WriteHeader(http.StatusOK)
	w.Write(wire)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
