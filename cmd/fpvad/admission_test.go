package main

// Tests for the multi-tenant front door: config-file precedence,
// -validate, bearer auth (401), rate limiting (429 + Retry-After),
// queue-full shedding (503), and the healthz status document.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/cmd/internal/api"
	"repro/fpva"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConfigFilePrecedence(t *testing.T) {
	cfg := writeFile(t, t.TempDir(), "fpvad.json", `{
		"addr": "127.0.0.1:9999",
		"cacheMB": 128,
		"ratePerSec": 5,
		"rateBurst": 10,
		"maxPending": 64,
		"jobTimeout": "10m",
		"solverExec": "in-process"
	}`)
	// File values apply where no flag is given; explicit flags win.
	opt, err := parseFlags([]string{"-config", cfg, "-cache-mb", "32"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.addr != "127.0.0.1:9999" {
		t.Errorf("addr = %q, want the file's value", opt.addr)
	}
	if opt.cacheMB != 32 {
		t.Errorf("cacheMB = %d, want the flag's 32 over the file's 128", opt.cacheMB)
	}
	if opt.ratePerSec != 5 || opt.rateBurst != 10 || opt.maxPending != 64 {
		t.Errorf("admission opts = %+v", opt)
	}
	if opt.jobTimeout != 10*time.Minute {
		t.Errorf("jobTimeout = %v, want 10m", opt.jobTimeout)
	}
}

func TestConfigFileRejectsUnknownFields(t *testing.T) {
	cfg := writeFile(t, t.TempDir(), "fpvad.json", `{"adr": ":9"}`)
	if _, err := parseFlags([]string{"-config", cfg}, io.Discard); err == nil {
		t.Fatal("typo'd config field parsed silently")
	}
}

func TestScanConfigArg(t *testing.T) {
	cases := []struct {
		args []string
		want string
		err  bool
	}{
		{[]string{"-config", "a.json"}, "a.json", false},
		{[]string{"--config=b.json", "-addr", ":0"}, "b.json", false},
		{[]string{"-addr", ":0"}, "", false},
		{[]string{"--", "-config", "x.json"}, "", false},
		{[]string{"-config"}, "", true},
	}
	for _, c := range cases {
		got, err := scanConfigArg(c.args)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("scanConfigArg(%v) = %q, %v; want %q, err=%v", c.args, got, err, c.want, c.err)
		}
	}
}

func TestValidateFlag(t *testing.T) {
	dir := t.TempDir()
	tokens := writeFile(t, dir, "tokens", "alice:secret-token-1\n")
	good := writeFile(t, dir, "good.json", `{"tokenFile": `+strconv.Quote(tokens)+`}`)
	var out, errOut strings.Builder
	if code := realMain([]string{"-config", good, "-validate"}, &out, &errOut); code != 0 {
		t.Fatalf("valid config: exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "configuration ok") {
		t.Errorf("stdout = %q", out.String())
	}

	bad := writeFile(t, dir, "bad.json", `{"tokenFile": "/does/not/exist"}`)
	if code := realMain([]string{"-config", bad, "-validate"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("missing token file: exit %d, want 2", code)
	}
	if code := realMain([]string{"-validate", "-rate", "-1"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("negative rate: exit %d, want 2", code)
	}
}

func TestLoadTokenFile(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "tokens", `
# comment line
alice:alice-secret-1

bare-token-long-enough
`)
	tokens, err := loadTokenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tokens["alice-secret-1"] != "alice" {
		t.Errorf("named credential not parsed: %v", tokens)
	}
	if name := tokens["bare-token-long-enough"]; !strings.HasPrefix(name, "client-") {
		t.Errorf("bare token name = %q, want a derived client-* name", name)
	}
	for _, bad := range []string{"alice:short", "a:dup-token-1\nb:dup-token-1", "same:token-one-1\nsame:token-two-2", ""} {
		p := writeFile(t, dir, "bad", bad)
		if _, err := loadTokenFile(p); err == nil {
			t.Errorf("token file %q parsed without error", bad)
		}
	}
}

// admissionServer builds a service + admission-wrapped test server, the
// same stack run() assembles.
func admissionServer(t *testing.T, adm *admission, svcOpts ...fpva.ServiceOption) (*httptest.Server, *fpva.Service) {
	t.Helper()
	svc := fpva.NewService(svcOpts...)
	srv := httptest.NewServer(adm.wrap(newServer(svc, adm)))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

func TestAuthRequired(t *testing.T) {
	adm := newAdmission(map[string]string{"tenant-a-secret": "tenant-a"}, 0, 0)
	srv, _ := admissionServer(t, adm)

	// No token: 401 with a challenge.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated: %d, want 401", resp.StatusCode)
	}
	if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Errorf("WWW-Authenticate = %q", got)
	}

	// Wrong token: still 401.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/stats", nil)
	req.Header.Set("Authorization", "Bearer wrong-secret-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token: %d, want 401", resp.StatusCode)
	}

	// Right token: through, and the stats report the two failures.
	req, _ = http.NewRequest("GET", srv.URL+"/v1/stats", nil)
	req.Header.Set("Authorization", "Bearer tenant-a-secret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st api.ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated: %d, want 200", resp.StatusCode)
	}
	if st.AuthFailures != 2 {
		t.Errorf("authFailures = %d, want 2", st.AuthFailures)
	}

	// /healthz needs no credentials (load balancers probe it).
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz without auth: %d, want 200", resp.StatusCode)
	}
}

func TestRateLimit429(t *testing.T) {
	adm := newAdmission(nil, 1, 2) // 1 req/s sustained, burst of 2
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	adm.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	srv, _ := admissionServer(t, adm)

	status := func() (int, string) {
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}
	if code, _ := status(); code != http.StatusOK {
		t.Fatalf("request 1: %d", code)
	}
	if code, _ := status(); code != http.StatusOK {
		t.Fatalf("request 2 (burst): %d", code)
	}
	code, retry := status()
	if code != http.StatusTooManyRequests {
		t.Fatalf("request 3: %d, want 429", code)
	}
	if sec, err := strconv.Atoi(retry); err != nil || sec < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", retry)
	}
	// A second of refill buys exactly one more request.
	mu.Lock()
	clock = clock.Add(time.Second)
	mu.Unlock()
	if code, _ := status(); code != http.StatusOK {
		t.Errorf("post-refill request: %d, want 200", code)
	}
	if code, _ := status(); code != http.StatusTooManyRequests {
		t.Errorf("second post-refill request: %d, want 429", code)
	}
	if _, limited := adm.counters(); limited != 2 {
		t.Errorf("rateLimited = %d, want 2", limited)
	}
}

func TestQueueFullSheds503(t *testing.T) {
	srv, svc := newAdmissionlessShedServer(t)
	// Hog the single admission slot with a job stuck in its progress
	// callback (callbacks run synchronously, so this is deterministic).
	a, err := fpva.NewArray(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hog, err := svc.SubmitGenerate(t.Context(), a,
		fpva.WithProgress(func(fpva.Event) {
			once.Do(func() { close(started) })
			<-release
		}))
	if err != nil {
		t.Fatal(err)
	}
	<-started

	code, body := postJSON(t, srv.URL+"/v1/jobs", `{"kind":"verify"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("malformed request during overload: %d, want 400", code)
	}
	arr := encodeArray(t, 3, 3)
	code, body = postJSON(t, srv.URL+"/v1/jobs", `{"kind":"generate","array":`+arr+`}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded submit: %d, want 503 (body %s)", code, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("503 body is not the JSON error document: %s", body)
	}

	close(release)
	if err := hog.Wait(t.Context()); err != nil {
		t.Fatal(err)
	}
	code, _ = postJSON(t, srv.URL+"/v1/jobs", `{"kind":"generate","array":`+arr+`}`)
	if code != http.StatusAccepted {
		t.Errorf("post-drain submit: %d, want 202", code)
	}
}

func newAdmissionlessShedServer(t *testing.T) (*httptest.Server, *fpva.Service) {
	t.Helper()
	svc := fpva.NewService(fpva.WithServiceWorkers(1), fpva.WithMaxPending(1))
	srv := httptest.NewServer(newServer(svc, nil))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

func TestHealthzDocument(t *testing.T) {
	srv, _ := newTestServer(t)
	code, body := getBody(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h api.Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.Store != nil {
		t.Errorf("store section present without -cache-dir: %+v", h.Store)
	}
	if h.Workers == nil || h.Workers.Slots < 1 || h.Workers.Executor == "" {
		t.Errorf("workers section = %+v", h.Workers)
	}
	// Strict mode changes nothing while healthy.
	if code, _ := getBody(t, srv.URL+"/healthz?strict=1"); code != http.StatusOK {
		t.Errorf("healthy strict healthz: %d, want 200", code)
	}
}

func TestHealthzDegradedStore(t *testing.T) {
	// A cache dir nested under a regular file cannot be created: the
	// store comes up degraded from birth, the daemon still serves.
	blocker := writeFile(t, t.TempDir(), "file", "not a directory")
	svc := fpva.NewService(fpva.WithCacheDir(filepath.Join(blocker, "cache")))
	srv := httptest.NewServer(newServer(svc, nil))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	code, body := getBody(t, srv.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("degraded healthz: %d, want 200 (degraded still serves)", code)
	}
	var h api.Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Store == nil || h.Store.Mode != "degraded" || h.Store.Reason == "" {
		t.Errorf("health = %+v, want degraded with a reason", h)
	}
	if code, _ := getBody(t, srv.URL+"/healthz?strict=1"); code != http.StatusServiceUnavailable {
		t.Errorf("strict degraded healthz: %d, want 503", code)
	}
	// The store section also reaches /v1/stats.
	_, body = getBody(t, srv.URL+"/v1/stats")
	var st api.ServiceStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Store == nil || st.Store.Mode != "degraded" {
		t.Errorf("stats store = %+v", st.Store)
	}
}
