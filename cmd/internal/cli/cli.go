// Package cli holds the exit-code contract shared by every command in
// this repo: usage and flag errors exit 2, deadline expiry (-timeout)
// exits 2, runtime failures exit 1, success exits 0. It lives under
// cmd/internal so the commands stay consumers of the public repro/fpva
// API only (enforced by the fpva/apiboundary analyzer in make lint).
package cli

import (
	"context"
	"errors"
	"fmt"
)

// UsageError marks command-line misuse (exit code 2, like flag errors).
type UsageError struct{ Err error }

func (e UsageError) Error() string { return e.Err.Error() }
func (e UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return UsageError{fmt.Errorf(format, args...)}
}

// ExitCode maps an error to the process exit code: usage errors and
// deadline expiry exit 2, runtime failures exit 1, nil exits 0.
func ExitCode(err error) int {
	var ue UsageError
	switch {
	case err == nil:
		return 0
	case errors.As(err, &ue), errors.Is(err, context.DeadlineExceeded):
		return 2
	}
	return 1
}
