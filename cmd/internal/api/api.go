// Package api is the JSON contract of the fpvad job API, shared by the
// daemon (cmd/fpvad) and its clients (fpvatest -daemon). Keeping one set
// of request/response shapes means daemon and client cannot drift apart —
// previously the client re-declared the structs it needed and only the CI
// daemon smoke guarded compatibility.
//
// Plans and arrays ride inside these messages in the fpva v1 wire format
// (json.RawMessage passthrough); everything else is plain JSON.
package api

import (
	"encoding/json"

	"repro/fpva"
)

// SubmitRequest is the POST /v1/jobs payload. Exactly one of Array (for
// generate) and Plan (for campaign/verify/diagnose) must be present, in
// the v1 wire format.
type SubmitRequest struct {
	Kind     string          `json:"kind"`
	Array    json.RawMessage `json:"array,omitempty"`
	Plan     json.RawMessage `json:"plan,omitempty"`
	Generate *GenerateParams `json:"generate,omitempty"`
	Campaign *CampaignParams `json:"campaign,omitempty"`
	Verify   *VerifyParams   `json:"verify,omitempty"`
	Diagnose *DiagnoseParams `json:"diagnose,omitempty"`
}

// GenerateParams tunes a generate job.
type GenerateParams struct {
	Direct        bool   `json:"direct,omitempty"`
	Block         int    `json:"block,omitempty"`
	SkipLeakage   bool   `json:"skipLeakage,omitempty"`
	PathEngine    string `json:"pathEngine,omitempty"`
	CutEngine     string `json:"cutEngine,omitempty"`
	SolverWorkers int    `json:"solverWorkers,omitempty"`
}

// CampaignParams tunes a campaign job.
type CampaignParams struct {
	Trials     int   `json:"trials,omitempty"`
	Faults     int   `json:"faults,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	Workers    int   `json:"workers,omitempty"`
	MaxEscapes int   `json:"maxEscapes,omitempty"`
	Leaks      bool  `json:"leaks,omitempty"`
}

// VerifyParams tunes a verify job.
type VerifyParams struct {
	MaxPairs int `json:"maxPairs,omitempty"`
}

// DiagnoseParams tunes a diagnose job. Observations are the vector
// readings already taken on the device under test; the job narrows the
// candidate set against them and plans the follow-up probes.
type DiagnoseParams struct {
	Observations []Observation `json:"observations,omitempty"`
	Planner      string        `json:"planner,omitempty"` // "greedy" | "ilp"
	Engine       string        `json:"engine,omitempty"`  // "auto" | "bit-parallel" | "scalar"
	Workers      int           `json:"workers,omitempty"`
	Budget       int           `json:"budget,omitempty"`
	MaxDoubles   int           `json:"maxDoubles,omitempty"`
	NoLeaks      bool          `json:"noLeaks,omitempty"`
}

// Observation is one applied test vector and the flow readings observed
// at the plan's sink order.
type Observation struct {
	Vector   int    `json:"vector"`
	Readings []bool `json:"readings"`
}

// Job is the job-status resource (also the terminal line of an event
// stream).
type Job struct {
	ID       string `json:"id"`
	Kind     string `json:"kind,omitempty"`
	State    string `json:"state"`
	CacheHit bool   `json:"cacheHit,omitempty"`
	Error    string `json:"error,omitempty"`
}

// JobStatus snapshots a job handle into its wire resource.
func JobStatus(j *fpva.Job) Job {
	out := Job{ID: j.ID(), Kind: j.Kind().String(), State: j.State().String(), CacheHit: j.CacheHit()}
	if err := j.Err(); err != nil {
		out.Error = err.Error()
	}
	return out
}

// Event is one NDJSON progress line. A line with an empty Event field is
// not an event but the stream's terminal Job status record.
type Event struct {
	Event     string `json:"event"`
	Phase     string `json:"phase,omitempty"`
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	Round     int    `json:"round,omitempty"`
	Ambiguity int    `json:"ambiguity,omitempty"`
}

// EventStatus converts a progress event into its wire line.
func EventStatus(e fpva.Event) Event {
	out := Event{Event: e.Kind.String()}
	switch e.Kind {
	case fpva.PhaseStarted, fpva.PhaseFinished:
		out.Phase = e.Phase.String()
	case fpva.CampaignTick:
		out.Done, out.Total = e.TrialsDone, e.TrialsTotal
	case fpva.DiagnoseTick:
		out.Round, out.Ambiguity = e.Round, e.Ambiguity
	}
	return out
}

// Edge addresses one valve in reports.
type Edge struct {
	Orient string `json:"o"`
	R      int    `json:"r"`
	C      int    `json:"c"`
}

// Fault is the report-side fault encoding; B is present only for
// control-leak faults.
type Fault struct {
	Kind string `json:"kind"`
	A    Edge   `json:"a"`
	B    *Edge  `json:"b,omitempty"`
}

// EdgeStatus converts a valve address.
func EdgeStatus(e fpva.Edge) Edge {
	return Edge{Orient: e.Orient.String(), R: e.R, C: e.C}
}

// FaultStatus converts a fault.
func FaultStatus(f fpva.Fault) Fault {
	out := Fault{Kind: f.Kind.String(), A: EdgeStatus(f.A)}
	if f.Kind == fpva.ControlLeak {
		b := EdgeStatus(f.B)
		out.B = &b
	}
	return out
}

// CampaignReport is the GET result payload of a campaign job.
type CampaignReport struct {
	Format   string    `json:"format"` // "fpva.campaign"
	Version  int       `json:"version"`
	Trials   int       `json:"trials"`
	Detected int       `json:"detected"`
	Rate     float64   `json:"rate"`
	Sims     int       `json:"sims"`
	Escapes  [][]Fault `json:"escapes,omitempty"`
}

// VerifyReport is the GET result payload of a verify job.
type VerifyReport struct {
	Format        string     `json:"format"` // "fpva.verify"
	Version       int        `json:"version"`
	SingleEscapes []Fault    `json:"singleEscapes"`
	DoubleEscapes [][2]Fault `json:"doubleEscapes"`
}

// ServiceStats mirrors fpva.ServiceStats with wire-style field names
// (durations in nanoseconds).
type ServiceStats struct {
	JobsSubmitted  int                  `json:"jobsSubmitted"`
	JobsPending    int                  `json:"jobsPending"`
	JobsRunning    int                  `json:"jobsRunning"`
	JobsDone       int                  `json:"jobsDone"`
	JobsFailed     int                  `json:"jobsFailed"`
	JobsCanceled   int                  `json:"jobsCanceled"`
	CacheHits      int                  `json:"cacheHits"`
	CacheMisses    int                  `json:"cacheMisses"`
	CacheCoalesced int                  `json:"cacheCoalesced"`
	CacheEntries   int                  `json:"cacheEntries"`
	CacheBytes     int64                `json:"cacheBytes"`
	CacheCapBytes  int64                `json:"cacheCapBytes"`
	Solves         int                  `json:"solves"`
	SolverWallNs   int64                `json:"solverWallNs"`
	Campaigns      int                  `json:"campaigns"`
	CampaignWallNs int64                `json:"campaignWallNs"`
	Verifies       int                  `json:"verifies"`
	Diagnoses      int                  `json:"diagnoses"`
	DiagnoseWallNs int64                `json:"diagnoseWallNs"`
	SigCacheHits   int                  `json:"sigCacheHits"`
	SigCacheMisses int                  `json:"sigCacheMisses"`
	SolverExecutor string               `json:"solverExecutor,omitempty"`
	WorkerSlots    int                  `json:"workerSlots,omitempty"`
	WorkersAlive   int                  `json:"workersAlive,omitempty"`
	WorkersBusy    int                  `json:"workersBusy,omitempty"`
	WorkerSpawns   int                  `json:"workerSpawns,omitempty"`
	WorkerRestarts int                  `json:"workerRestarts,omitempty"`
	WorkerKills    int                  `json:"workerKills,omitempty"`
	JobsShed       int                  `json:"jobsShed"`
	AuthFailures   int                  `json:"authFailures"`
	RateLimited    int                  `json:"rateLimited"`
	Store          *StoreStats          `json:"store,omitempty"`
	Kinds          map[string]KindStats `json:"kinds,omitempty"`
}

// StoreStats mirrors fpva.ServiceStats.Store: the durable plan store's
// mode and counters. Absent from /v1/stats when the daemon runs
// without -cache-dir.
type StoreStats struct {
	Mode          string `json:"mode"` // "ok" | "degraded"
	Reason        string `json:"reason,omitempty"`
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	CapBytes      int64  `json:"capBytes"`
	Hits          int    `json:"hits"`
	Misses        int    `json:"misses"`
	Writes        int    `json:"writes"`
	WriteErrors   int    `json:"writeErrors"`
	SkippedWrites int    `json:"skippedWrites"`
	ReadErrors    int    `json:"readErrors"`
	Quarantined   int    `json:"quarantined"`
	Evictions     int    `json:"evictions"`
	Trips         int    `json:"trips"`
	Recoveries    int    `json:"recoveries"`
}

// Health is the GET /healthz body. Status is "ok" or "degraded"; both
// answer 200 so load balancers don't flap on a daemon that still
// serves (memory-only), while ?strict=1 turns degraded into a 503 for
// orchestrators that should drain it.
type Health struct {
	Status  string         `json:"status"`
	Store   *HealthStore   `json:"store,omitempty"`
	Workers *HealthWorkers `json:"workers"`
}

// HealthStore summarizes the durable plan store (absent without
// -cache-dir).
type HealthStore struct {
	Mode   string `json:"mode"`
	Reason string `json:"reason,omitempty"`
}

// HealthWorkers summarizes job execution capacity: service worker
// slots, and under -solver-exec subprocess the solver pool's
// aliveness.
type HealthWorkers struct {
	Slots    int    `json:"slots"`
	Executor string `json:"executor"`
	Alive    int    `json:"alive,omitempty"`
	Busy     int    `json:"busy,omitempty"`
}

// KindStats is the per-JobKind submission/terminal tally.
type KindStats struct {
	Submitted int `json:"submitted"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
}
