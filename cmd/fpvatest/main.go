// Command fpvatest generates a compact test set for an FPVA: flow-path
// vectors (stuck-at-0), cut-set vectors (stuck-at-1) and control-leakage
// vectors, in the hierarchical flow of the paper's evaluation.
//
// Usage:
//
//	fpvatest -table1                  reproduce Table I (all five arrays)
//	fpvatest -case 20x20              one Table I array, stats + vectors
//	fpvatest -rows 8 -cols 8          a full custom array
//	fpvatest -in chip.fpva            an array in the text format
//	fpvatest -case 5x5 -dump          also print every vector's open valves
//	fpvatest -case 5x5 -verify        exhaustive 1- and 2-fault check
//	fpvatest -rows 4 -cols 4 -path-engine ilp-iterative -cut-engine ilp \
//	         -workers 8               the paper's exact ILP engines on a
//	                                  warm-started parallel branch-and-bound
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cutset"
	"repro/internal/flowpath"
	"repro/internal/grid"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "reproduce Table I across all benchmark arrays")
		caseName  = flag.String("case", "", "one Table I array (5x5, 10x10, 15x15, 20x20, 30x30)")
		rows      = flag.Int("rows", 0, "custom full array rows")
		cols      = flag.Int("cols", 0, "custom full array columns")
		inFile    = flag.String("in", "", "read an array in the text format")
		direct    = flag.Bool("direct", false, "disable the hierarchical 5x5 decomposition")
		blockSize = flag.Int("block", 5, "hierarchical block edge length")
		dump      = flag.Bool("dump", false, "print each vector's open valves")
		verify    = flag.Bool("verify", false, "exhaustively verify the 1- and 2-fault guarantees")
		workers   = flag.Int("workers", 1, "branch-and-bound workers for the ILP engines (bit-identical results)")
		pathEng   = flag.String("path-engine", "auto", "flow-path engine: auto, serpentine, ilp-iterative, ilp-monolithic")
		cutEng    = flag.String("cut-engine", "auto", "cut-set engine: auto, dual, ilp")
	)
	flag.Parse()
	if err := run(*table1, *caseName, *rows, *cols, *inFile, *direct, *blockSize, *dump, *verify, *workers, *pathEng, *cutEng); err != nil {
		fmt.Fprintln(os.Stderr, "fpvatest:", err)
		os.Exit(1)
	}
}

func run(table1 bool, caseName string, rows, cols int, inFile string,
	direct bool, blockSize int, dump, verify bool, workers int, pathEng, cutEng string) error {
	if table1 {
		out, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	a, err := loadArray(caseName, rows, cols, inFile)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Hierarchical: !direct,
		BlockSize:    blockSize,
		Workers:      workers,
	}
	if err := parseEngines(pathEng, cutEng, &cfg); err != nil {
		return err
	}
	ts, err := core.Generate(a, cfg)
	if err != nil {
		return err
	}
	fmt.Println(a)
	fmt.Println(ts.Stats)
	fmt.Printf("baseline (one valve at a time) would need %d vectors\n", bench.BaselineCount(a))
	if len(ts.UncoveredPath) > 0 {
		fmt.Printf("WARNING: stuck-at-0 untestable valves: %v\n", ts.UncoveredPath)
	}
	if len(ts.UncoveredCut) > 0 {
		fmt.Printf("WARNING: stuck-at-1 untestable valves: %v\n", ts.UncoveredCut)
	}
	if n := ts.Stats.PathILPNonOptimal; n > 0 {
		fmt.Printf("WARNING: %d flow-path ILP solve(s) hit the node budget; paths accepted are feasible, not proven optimal\n", n)
	}
	if n := ts.Stats.CutILPNonOptimal; n > 0 {
		fmt.Printf("WARNING: %d cut-set ILP solve(s) hit the node budget; cuts accepted are feasible, not proven optimal\n", n)
	}
	if dump {
		for _, vec := range ts.AllVectors() {
			fmt.Printf("%-10s (%v): open %v\n", vec.Name, vec.Kind, vec.OpenValves())
		}
	}
	if verify {
		singles, err := ts.VerifySingleFaults()
		if err != nil {
			return err
		}
		fmt.Printf("single-fault check: %d escapes\n", len(singles))
		pairs, err := ts.VerifyDoubleFaults(0)
		if err != nil {
			return err
		}
		fmt.Printf("double-fault check: %d escapes\n", len(pairs))
	}
	return nil
}

func loadArray(caseName string, rows, cols int, inFile string) (*grid.Array, error) {
	switch {
	case caseName != "":
		c, err := bench.FindCase(caseName)
		if err != nil {
			return nil, err
		}
		return c.Build()
	case inFile != "":
		f, err := os.Open(inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return grid.Parse(f)
	case rows > 0 && cols > 0:
		return grid.NewStandard(rows, cols)
	}
	return nil, fmt.Errorf("specify -table1, -case, -in, or -rows/-cols (see -h)")
}

// parseEngines maps the -path-engine / -cut-engine flag values onto the
// generator options.
func parseEngines(pathEng, cutEng string, cfg *core.Config) error {
	switch pathEng {
	case "auto":
		cfg.FlowPath.Engine = flowpath.EngineAuto
	case "serpentine":
		cfg.FlowPath.Engine = flowpath.EngineSerpentine
	case "ilp-iterative":
		cfg.FlowPath.Engine = flowpath.EngineILPIterative
	case "ilp-monolithic":
		cfg.FlowPath.Engine = flowpath.EngineILPMonolithic
	default:
		return fmt.Errorf("unknown -path-engine %q", pathEng)
	}
	switch cutEng {
	case "auto":
		cfg.CutSet.Engine = cutset.EngineAuto
	case "dual":
		cfg.CutSet.Engine = cutset.EngineDual
	case "ilp":
		cfg.CutSet.Engine = cutset.EngineILP
	default:
		return fmt.Errorf("unknown -cut-engine %q", cutEng)
	}
	return nil
}
