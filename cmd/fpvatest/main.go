// Command fpvatest generates a compact test set for an FPVA: flow-path
// vectors (stuck-at-0), cut-set vectors (stuck-at-1) and control-leakage
// vectors, in the hierarchical flow of the paper's evaluation. It is a thin
// shell over the public fpva package.
//
// Usage:
//
//	fpvatest -table1                  reproduce Table I (all five arrays)
//	fpvatest -case 20x20              one Table I array, stats + vectors
//	fpvatest -rows 8 -cols 8          a full custom array
//	fpvatest -in chip.fpva            an array in the text format
//	fpvatest -case 10x10 -o plan.json serialize the plan for fpvasim -plan
//	fpvatest -case 5x5 -dump          also print every vector's open valves
//	fpvatest -case 5x5 -verify        exhaustive 1- and 2-fault check
//	fpvatest -rows 4 -cols 4 -path-engine ilp-iterative -cut-engine ilp \
//	         -workers 8               the paper's exact ILP engines on a
//	                                  warm-started parallel branch-and-bound
//	fpvatest -daemon http://host:8471 -rows 4 -cols 4 -o plan.json
//	                                  generate on a remote fpvad (shared
//	                                  plan cache); -o writes the daemon's
//	                                  bytes verbatim
//	fpvatest -case 30x30 -timeout 30s abort (exit 2) past a deadline
//
// Exactly one of -table1, -case, -rows/-cols and -in must be given.
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage errors and
// deadline expiry (-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/cmd/internal/cli"
	"repro/fpva"
)

type options struct {
	table1    bool
	caseName  string
	rows      int
	cols      int
	inFile    string
	outFile   string
	direct    bool
	blockSize int
	dump      bool
	verify    bool
	workers   int
	pathEng   string
	cutEng    string
	progress  bool
	timeout   time.Duration
	daemon    string
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	opt, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
		defer cancel()
	}
	if err := run(ctx, stdout, opt); err != nil {
		fmt.Fprintln(stderr, "fpvatest:", err)
		return exitCode(err)
	}
	return 0
}

// usagef / exitCode alias the repo-wide CLI exit-code contract
// (cmd/internal/cli): usage 2, deadline 2, runtime 1, success 0.
var (
	usagef   = cli.Usagef
	exitCode = cli.ExitCode
)

func parseFlags(args []string, stderr io.Writer) (options, error) {
	var opt options
	fs := flag.NewFlagSet("fpvatest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&opt.table1, "table1", false, "reproduce Table I across all benchmark arrays")
	fs.StringVar(&opt.caseName, "case", "", "one Table I array (5x5, 10x10, 15x15, 20x20, 30x30)")
	fs.IntVar(&opt.rows, "rows", 0, "custom full array rows")
	fs.IntVar(&opt.cols, "cols", 0, "custom full array columns")
	fs.StringVar(&opt.inFile, "in", "", "read an array in the text format")
	fs.StringVar(&opt.outFile, "o", "", "write the generated plan as JSON (for fpvasim -plan)")
	fs.BoolVar(&opt.direct, "direct", false, "disable the hierarchical 5x5 decomposition")
	fs.IntVar(&opt.blockSize, "block", 5, "hierarchical block edge length")
	fs.BoolVar(&opt.dump, "dump", false, "print each vector's open valves")
	fs.BoolVar(&opt.verify, "verify", false, "exhaustively verify the 1- and 2-fault guarantees")
	fs.IntVar(&opt.workers, "workers", 1, "branch-and-bound workers for the ILP engines (bit-identical results)")
	fs.StringVar(&opt.pathEng, "path-engine", "auto", "flow-path engine: auto, serpentine, ilp-iterative, ilp-monolithic")
	fs.StringVar(&opt.cutEng, "cut-engine", "auto", "cut-set engine: auto, dual, ilp")
	fs.BoolVar(&opt.progress, "progress", false, "report generation phases on stderr")
	fs.DurationVar(&opt.timeout, "timeout", 0, "abort after this duration (exit code 2)")
	fs.StringVar(&opt.daemon, "daemon", "", "generate on a remote fpvad at this base URL")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return opt, err
		}
		return opt, usagef("%v", err)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fpvatest: unexpected argument %q\n", fs.Arg(0))
		return opt, usagef("unexpected argument %q", fs.Arg(0))
	}
	return opt, nil
}

// validateSelectors enforces that exactly one array source is chosen.
func validateSelectors(opt options) error {
	n := 0
	if opt.table1 {
		n++
	}
	if opt.caseName != "" {
		n++
	}
	if opt.rows != 0 || opt.cols != 0 {
		if opt.rows <= 0 || opt.cols <= 0 {
			return usagef("-rows and -cols must both be positive (got %d, %d)", opt.rows, opt.cols)
		}
		n++
	}
	if opt.inFile != "" {
		n++
	}
	switch n {
	case 0:
		return usagef("specify exactly one of -table1, -case, -rows/-cols, or -in (see -h)")
	case 1:
		return nil
	}
	return usagef("-table1, -case, -rows/-cols and -in are mutually exclusive; pick one")
}

func run(ctx context.Context, w io.Writer, opt options) error {
	if err := validateSelectors(opt); err != nil {
		return err
	}
	if opt.daemon != "" {
		if opt.table1 {
			return usagef("-table1 runs locally; it cannot be combined with -daemon")
		}
		return runRemote(ctx, w, opt)
	}
	if opt.table1 {
		if opt.outFile != "" {
			return usagef("-o needs a single array; it cannot be combined with -table1")
		}
		out, err := fpva.Table1(ctx)
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
		return nil
	}
	a, err := loadArray(opt)
	if err != nil {
		return err
	}
	genOpts := []fpva.GenOption{
		fpva.WithBlockSize(opt.blockSize),
		fpva.WithSolverWorkers(opt.workers),
	}
	if opt.direct {
		genOpts = append(genOpts, fpva.WithDirectModel())
	}
	if opt.progress {
		genOpts = append(genOpts, fpva.WithProgress(func(e fpva.Event) {
			fmt.Fprintf(os.Stderr, "fpvatest: %v\n", e)
		}))
	}
	genOpts, err = appendEngines(genOpts, opt.pathEng, opt.cutEng)
	if err != nil {
		return err
	}
	plan, err := fpva.Generate(ctx, a, genOpts...)
	if err != nil {
		return err
	}
	reportPlan(w, plan)
	if opt.outFile != "" {
		f, err := os.Create(opt.outFile)
		if err != nil {
			return err
		}
		if err := fpva.EncodePlan(f, plan); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "plan written to %s\n", opt.outFile)
	}
	return finishReport(ctx, w, plan, opt)
}

// reportPlan prints the stats banner and coverage warnings for a plan.
func reportPlan(w io.Writer, plan *fpva.Plan) {
	s := plan.Stats()
	fmt.Fprintln(w, plan.Array())
	fmt.Fprintln(w, s)
	fmt.Fprintf(w, "baseline (one valve at a time) would need %d vectors\n",
		plan.Array().BaselineCount())
	if uncov := plan.UncoveredPath(); len(uncov) > 0 {
		fmt.Fprintf(w, "WARNING: stuck-at-0 untestable valves: %v\n", uncov)
	}
	if uncov := plan.UncoveredCut(); len(uncov) > 0 {
		fmt.Fprintf(w, "WARNING: stuck-at-1 untestable valves: %v\n", uncov)
	}
	if n := s.PathILPNonOptimal; n > 0 {
		fmt.Fprintf(w, "WARNING: %d flow-path ILP solve(s) hit the node budget; paths accepted are feasible, not proven optimal\n", n)
	}
	if n := s.CutILPNonOptimal; n > 0 {
		fmt.Fprintf(w, "WARNING: %d cut-set ILP solve(s) hit the node budget; cuts accepted are feasible, not proven optimal\n", n)
	}
}

// finishReport handles the -dump and -verify tails shared by local and
// remote runs.
func finishReport(ctx context.Context, w io.Writer, plan *fpva.Plan, opt options) error {
	if opt.dump {
		for _, vec := range plan.Vectors() {
			fmt.Fprintf(w, "%-10s (%s): open %v\n", vec.Name, vec.Kind, vec.Open)
		}
	}
	if opt.verify {
		singles, err := plan.VerifySingleFaults(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "single-fault check: %d escapes\n", len(singles))
		pairs, err := plan.VerifyDoubleFaults(ctx, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "double-fault check: %d escapes\n", len(pairs))
	}
	return nil
}

func loadArray(opt options) (*fpva.Array, error) {
	switch {
	case opt.caseName != "":
		return fpva.BenchmarkArray(opt.caseName)
	case opt.inFile != "":
		f, err := os.Open(opt.inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return fpva.ParseArrayText(f)
	default:
		return fpva.NewArray(opt.rows, opt.cols)
	}
}

// appendEngines maps the -path-engine / -cut-engine flag values onto the
// generator options.
func appendEngines(opts []fpva.GenOption, pathEng, cutEng string) ([]fpva.GenOption, error) {
	pe, err := fpva.ParsePathEngine(pathEng)
	if err != nil {
		return nil, usagef("unknown -path-engine %q", pathEng)
	}
	ce, err := fpva.ParseCutEngine(cutEng)
	if err != nil {
		return nil, usagef("unknown -cut-engine %q", cutEng)
	}
	return append(opts, fpva.WithPathEngine(pe), fpva.WithCutEngine(ce)), nil
}
