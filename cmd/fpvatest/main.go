// Command fpvatest generates a compact test set for an FPVA: flow-path
// vectors (stuck-at-0), cut-set vectors (stuck-at-1) and control-leakage
// vectors, in the hierarchical flow of the paper's evaluation. It is a thin
// shell over the public fpva package.
//
// Usage:
//
//	fpvatest -table1                  reproduce Table I (all five arrays)
//	fpvatest -case 20x20              one Table I array, stats + vectors
//	fpvatest -rows 8 -cols 8          a full custom array
//	fpvatest -in chip.fpva            an array in the text format
//	fpvatest -case 10x10 -o plan.json serialize the plan for fpvasim -plan
//	fpvatest -case 5x5 -dump          also print every vector's open valves
//	fpvatest -case 5x5 -verify        exhaustive 1- and 2-fault check
//	fpvatest -rows 4 -cols 4 -path-engine ilp-iterative -cut-engine ilp \
//	         -workers 8               the paper's exact ILP engines on a
//	                                  warm-started parallel branch-and-bound
//
// Exactly one of -table1, -case, -rows/-cols and -in must be given.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/fpva"
)

type options struct {
	table1    bool
	caseName  string
	rows      int
	cols      int
	inFile    string
	outFile   string
	direct    bool
	blockSize int
	dump      bool
	verify    bool
	workers   int
	pathEng   string
	cutEng    string
	progress  bool
}

func main() {
	var opt options
	flag.BoolVar(&opt.table1, "table1", false, "reproduce Table I across all benchmark arrays")
	flag.StringVar(&opt.caseName, "case", "", "one Table I array (5x5, 10x10, 15x15, 20x20, 30x30)")
	flag.IntVar(&opt.rows, "rows", 0, "custom full array rows")
	flag.IntVar(&opt.cols, "cols", 0, "custom full array columns")
	flag.StringVar(&opt.inFile, "in", "", "read an array in the text format")
	flag.StringVar(&opt.outFile, "o", "", "write the generated plan as JSON (for fpvasim -plan)")
	flag.BoolVar(&opt.direct, "direct", false, "disable the hierarchical 5x5 decomposition")
	flag.IntVar(&opt.blockSize, "block", 5, "hierarchical block edge length")
	flag.BoolVar(&opt.dump, "dump", false, "print each vector's open valves")
	flag.BoolVar(&opt.verify, "verify", false, "exhaustively verify the 1- and 2-fault guarantees")
	flag.IntVar(&opt.workers, "workers", 1, "branch-and-bound workers for the ILP engines (bit-identical results)")
	flag.StringVar(&opt.pathEng, "path-engine", "auto", "flow-path engine: auto, serpentine, ilp-iterative, ilp-monolithic")
	flag.StringVar(&opt.cutEng, "cut-engine", "auto", "cut-set engine: auto, dual, ilp")
	flag.BoolVar(&opt.progress, "progress", false, "report generation phases on stderr")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "fpvatest:", err)
		os.Exit(1)
	}
}

// validateSelectors enforces that exactly one array source is chosen.
func validateSelectors(opt options) error {
	n := 0
	if opt.table1 {
		n++
	}
	if opt.caseName != "" {
		n++
	}
	if opt.rows != 0 || opt.cols != 0 {
		if opt.rows <= 0 || opt.cols <= 0 {
			return fmt.Errorf("-rows and -cols must both be positive (got %d, %d)", opt.rows, opt.cols)
		}
		n++
	}
	if opt.inFile != "" {
		n++
	}
	switch n {
	case 0:
		return fmt.Errorf("specify exactly one of -table1, -case, -rows/-cols, or -in (see -h)")
	case 1:
		return nil
	}
	return fmt.Errorf("-table1, -case, -rows/-cols and -in are mutually exclusive; pick one")
}

func run(ctx context.Context, w io.Writer, opt options) error {
	if err := validateSelectors(opt); err != nil {
		return err
	}
	if opt.table1 {
		if opt.outFile != "" {
			return fmt.Errorf("-o needs a single array; it cannot be combined with -table1")
		}
		out, err := fpva.Table1(ctx)
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
		return nil
	}
	a, err := loadArray(opt)
	if err != nil {
		return err
	}
	genOpts := []fpva.GenOption{
		fpva.WithBlockSize(opt.blockSize),
		fpva.WithSolverWorkers(opt.workers),
	}
	if opt.direct {
		genOpts = append(genOpts, fpva.WithDirectModel())
	}
	if opt.progress {
		genOpts = append(genOpts, fpva.WithProgress(func(e fpva.Event) {
			fmt.Fprintf(os.Stderr, "fpvatest: %v\n", e)
		}))
	}
	genOpts, err = appendEngines(genOpts, opt.pathEng, opt.cutEng)
	if err != nil {
		return err
	}
	plan, err := fpva.Generate(ctx, a, genOpts...)
	if err != nil {
		return err
	}
	s := plan.Stats()
	fmt.Fprintln(w, a)
	fmt.Fprintln(w, s)
	fmt.Fprintf(w, "baseline (one valve at a time) would need %d vectors\n", a.BaselineCount())
	if uncov := plan.UncoveredPath(); len(uncov) > 0 {
		fmt.Fprintf(w, "WARNING: stuck-at-0 untestable valves: %v\n", uncov)
	}
	if uncov := plan.UncoveredCut(); len(uncov) > 0 {
		fmt.Fprintf(w, "WARNING: stuck-at-1 untestable valves: %v\n", uncov)
	}
	if n := s.PathILPNonOptimal; n > 0 {
		fmt.Fprintf(w, "WARNING: %d flow-path ILP solve(s) hit the node budget; paths accepted are feasible, not proven optimal\n", n)
	}
	if n := s.CutILPNonOptimal; n > 0 {
		fmt.Fprintf(w, "WARNING: %d cut-set ILP solve(s) hit the node budget; cuts accepted are feasible, not proven optimal\n", n)
	}
	if opt.outFile != "" {
		f, err := os.Create(opt.outFile)
		if err != nil {
			return err
		}
		if err := fpva.EncodePlan(f, plan); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "plan written to %s\n", opt.outFile)
	}
	if opt.dump {
		for _, vec := range plan.Vectors() {
			fmt.Fprintf(w, "%-10s (%s): open %v\n", vec.Name, vec.Kind, vec.Open)
		}
	}
	if opt.verify {
		singles, err := plan.VerifySingleFaults(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "single-fault check: %d escapes\n", len(singles))
		pairs, err := plan.VerifyDoubleFaults(ctx, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "double-fault check: %d escapes\n", len(pairs))
	}
	return nil
}

func loadArray(opt options) (*fpva.Array, error) {
	switch {
	case opt.caseName != "":
		return fpva.BenchmarkArray(opt.caseName)
	case opt.inFile != "":
		f, err := os.Open(opt.inFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return fpva.ParseArrayText(f)
	default:
		return fpva.NewArray(opt.rows, opt.cols)
	}
}

// appendEngines maps the -path-engine / -cut-engine flag values onto the
// generator options.
func appendEngines(opts []fpva.GenOption, pathEng, cutEng string) ([]fpva.GenOption, error) {
	switch pathEng {
	case "auto":
		opts = append(opts, fpva.WithPathEngine(fpva.PathEngineAuto))
	case "serpentine":
		opts = append(opts, fpva.WithPathEngine(fpva.PathEngineSerpentine))
	case "ilp-iterative":
		opts = append(opts, fpva.WithPathEngine(fpva.PathEngineILPIterative))
	case "ilp-monolithic":
		opts = append(opts, fpva.WithPathEngine(fpva.PathEngineILPMonolithic))
	default:
		return nil, fmt.Errorf("unknown -path-engine %q", pathEng)
	}
	switch cutEng {
	case "auto":
		opts = append(opts, fpva.WithCutEngine(fpva.CutEngineAuto))
	case "dual":
		opts = append(opts, fpva.WithCutEngine(fpva.CutEngineDual))
	case "ilp":
		opts = append(opts, fpva.WithCutEngine(fpva.CutEngineILP))
	default:
		return nil, fmt.Errorf("unknown -cut-engine %q", cutEng)
	}
	return opts, nil
}
