package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/fpva"
)

func TestLoadArrayCase(t *testing.T) {
	a, err := loadArray(options{caseName: "5x5"})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumValves() != 39 {
		t.Errorf("nv=%d", a.NumValves())
	}
}

func TestLoadArrayDims(t *testing.T) {
	a, err := loadArray(options{rows: 4, cols: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 4 || a.Cols() != 6 {
		t.Errorf("dims %dx%d", a.Rows(), a.Cols())
	}
}

func TestLoadArrayFile(t *testing.T) {
	src, err := fpva.NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chip.fpva")
	if err := os.WriteFile(path, []byte(src.Text()), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := loadArray(options{inFile: path})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumValves() != src.NumValves() {
		t.Error("file round trip lost valves")
	}
}

func TestValidateSelectors(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  options
		ok   bool
	}{
		{"none", options{}, false},
		{"case", options{caseName: "5x5"}, true},
		{"dims", options{rows: 3, cols: 3}, true},
		{"rows only", options{rows: 3}, false},
		{"cols negative", options{rows: 3, cols: -1}, false},
		{"case and dims", options{caseName: "5x5", rows: 3, cols: 3}, false},
		{"case and in", options{caseName: "5x5", inFile: "x.fpva"}, false},
		{"table1 and case", options{table1: true, caseName: "5x5"}, false},
		{"table1", options{table1: true}, true},
		{"in", options{inFile: "x.fpva"}, true},
	} {
		err := validateSelectors(tc.opt)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestRunRejectsAmbiguousFlags(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5", rows: 3, cols: 3,
		blockSize: 5, pathEng: "auto", cutEng: "auto"})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("ambiguous selectors accepted: %v", err)
	}
}

func TestRunUnknownEngine(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5",
		blockSize: 5, pathEng: "nope", cutEng: "auto"})
	if err == nil || !strings.Contains(err.Error(), "path-engine") {
		t.Errorf("unknown engine accepted: %v", err)
	}
}

func TestRunVerifySmall(t *testing.T) {
	// End-to-end: generate + exhaustive verification on the smallest case,
	// with a parallel solver pool.
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5",
		blockSize: 5, verify: true, workers: 2, pathEng: "auto", cutEng: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"single-fault check: 0 escapes", "double-fault check: 0 escapes"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("output missing %q:\n%s", want, b.String())
		}
	}
}

// TestParseFlags is the table-driven flag contract, including -timeout and
// the exit-code mapping for flag misuse.
func TestParseFlags(t *testing.T) {
	for _, tc := range []struct {
		name  string
		args  []string
		code  int
		check func(options) bool
	}{
		{"defaults", nil, 0, func(o options) bool {
			return o.blockSize == 5 && o.timeout == 0 && o.daemon == "" && o.pathEng == "auto"
		}},
		{"timeout", []string{"-timeout", "30s"}, 0, func(o options) bool {
			return o.timeout == 30*time.Second
		}},
		{"timeout ms", []string{"-timeout", "250ms"}, 0, func(o options) bool {
			return o.timeout == 250*time.Millisecond
		}},
		{"daemon", []string{"-daemon", "http://localhost:8471", "-rows", "4", "-cols", "4"}, 0,
			func(o options) bool { return o.daemon == "http://localhost:8471" && o.rows == 4 }},
		{"bad timeout", []string{"-timeout", "soon"}, 2, nil},
		{"unknown flag", []string{"-nope"}, 2, nil},
		{"stray argument", []string{"5x5"}, 2, nil},
	} {
		var errb strings.Builder
		opt, err := parseFlags(tc.args, &errb)
		if got := exitCode(err); got != tc.code {
			t.Errorf("%s: exit %d, want %d (err %v)", tc.name, got, tc.code, err)
			continue
		}
		if tc.check != nil && err == nil && !tc.check(opt) {
			t.Errorf("%s: options %+v", tc.name, opt)
		}
	}
}

// TestExitCodes pins the error classification: usage 2, deadline 2,
// runtime 1, success 0.
func TestExitCodes(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Errorf("nil: %d", got)
	}
	if got := exitCode(usagef("bad flags")); got != 2 {
		t.Errorf("usage: %d", got)
	}
	if got := exitCode(fmt.Errorf("wrapped: %w", usagef("bad"))); got != 2 {
		t.Errorf("wrapped usage: %d", got)
	}
	if got := exitCode(context.DeadlineExceeded); got != 2 {
		t.Errorf("deadline: %d", got)
	}
	if got := exitCode(fmt.Errorf("generate: %w", context.DeadlineExceeded)); got != 2 {
		t.Errorf("wrapped deadline: %d", got)
	}
	if got := exitCode(fmt.Errorf("boom")); got != 1 {
		t.Errorf("runtime: %d", got)
	}
}

// TestRealMainExitCodes runs the binary entry point end to end per class.
func TestRealMainExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"flag error", []string{"-nope"}, 2},
		{"no selector", nil, 2},
		{"ambiguous selectors", []string{"-case", "5x5", "-rows", "3", "-cols", "3"}, 2},
		{"unknown engine", []string{"-case", "5x5", "-path-engine", "warp"}, 2},
		{"runtime failure", []string{"-case", "7x7"}, 1},
		{"missing input file", []string{"-in", "/nonexistent/chip.fpva"}, 1},
		{"success", []string{"-rows", "3", "-cols", "3"}, 0},
		{"deadline", []string{"-case", "30x30", "-timeout", "1ms"}, 2},
	} {
		var out, errb strings.Builder
		if got := realMain(tc.args, &out, &errb); got != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr %q)", tc.name, got, tc.code, errb.String())
		}
	}
}

// fakeDaemon implements just enough of fpvad's API to test the -daemon
// client: it really generates the submitted array so the plan bytes are
// genuine v1 wire format.
func fakeDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	var planBytes []byte
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Kind  string          `json:"kind"`
			Array json.RawMessage `json:"array"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Kind != "generate" {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		a, err := fpva.DecodeArray(bytes.NewReader(req.Array))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		plan, err := fpva.Generate(context.Background(), a)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var buf bytes.Buffer
		if err := fpva.EncodePlan(&buf, plan); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		planBytes = buf.Bytes()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j000001","kind":"generate","state":"pending"}`)
	})
	mux.HandleFunc("GET /v1/jobs/j000001/events", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"event":"phase-started","phase":"flow-paths"}`)
		fmt.Fprintln(w, `{"event":"phase-finished","phase":"flow-paths"}`)
		fmt.Fprintln(w, `{"id":"j000001","kind":"generate","state":"done"}`)
	})
	mux.HandleFunc("GET /v1/jobs/j000001/plan", func(w http.ResponseWriter, r *http.Request) {
		w.Write(planBytes)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRunRemoteGenerate: the -daemon path submits, waits, fetches, writes
// -o verbatim, and prints the same report shape as a local run.
func TestRunRemoteGenerate(t *testing.T) {
	srv := fakeDaemon(t)
	path := filepath.Join(t.TempDir(), "plan.json")
	var b strings.Builder
	err := run(context.Background(), &b, options{rows: 4, cols: 4,
		blockSize: 5, pathEng: "auto", cutEng: "auto",
		daemon: srv.URL, outFile: path})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"submitted job j000001", "nv=", "plan written to"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	written, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fpva.DecodePlan(bytes.NewReader(written))
	if err != nil {
		t.Fatalf("written plan: %v", err)
	}
	if plan.NumVectors() == 0 {
		t.Error("remote plan empty")
	}
}

// TestRunRemoteRejectsTable1: -table1 must stay local.
func TestRunRemoteRejectsTable1(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{table1: true, daemon: "http://x",
		blockSize: 5, pathEng: "auto", cutEng: "auto"})
	if exitCode(err) != 2 {
		t.Errorf("table1+daemon: %v (exit %d), want usage error", err, exitCode(err))
	}
}

func TestRunWritesPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	var b strings.Builder
	err := run(context.Background(), &b, options{rows: 4, cols: 4,
		blockSize: 5, outFile: path, pathEng: "auto", cutEng: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := fpva.DecodePlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumVectors() == 0 {
		t.Error("written plan has no vectors")
	}
}
