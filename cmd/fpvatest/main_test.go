package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/fpva"
)

func TestLoadArrayCase(t *testing.T) {
	a, err := loadArray(options{caseName: "5x5"})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumValves() != 39 {
		t.Errorf("nv=%d", a.NumValves())
	}
}

func TestLoadArrayDims(t *testing.T) {
	a, err := loadArray(options{rows: 4, cols: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != 4 || a.Cols() != 6 {
		t.Errorf("dims %dx%d", a.Rows(), a.Cols())
	}
}

func TestLoadArrayFile(t *testing.T) {
	src, err := fpva.NewArray(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chip.fpva")
	if err := os.WriteFile(path, []byte(src.Text()), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := loadArray(options{inFile: path})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumValves() != src.NumValves() {
		t.Error("file round trip lost valves")
	}
}

func TestValidateSelectors(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  options
		ok   bool
	}{
		{"none", options{}, false},
		{"case", options{caseName: "5x5"}, true},
		{"dims", options{rows: 3, cols: 3}, true},
		{"rows only", options{rows: 3}, false},
		{"cols negative", options{rows: 3, cols: -1}, false},
		{"case and dims", options{caseName: "5x5", rows: 3, cols: 3}, false},
		{"case and in", options{caseName: "5x5", inFile: "x.fpva"}, false},
		{"table1 and case", options{table1: true, caseName: "5x5"}, false},
		{"table1", options{table1: true}, true},
		{"in", options{inFile: "x.fpva"}, true},
	} {
		err := validateSelectors(tc.opt)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestRunRejectsAmbiguousFlags(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5", rows: 3, cols: 3,
		blockSize: 5, pathEng: "auto", cutEng: "auto"})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("ambiguous selectors accepted: %v", err)
	}
}

func TestRunUnknownEngine(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5",
		blockSize: 5, pathEng: "nope", cutEng: "auto"})
	if err == nil || !strings.Contains(err.Error(), "path-engine") {
		t.Errorf("unknown engine accepted: %v", err)
	}
}

func TestRunVerifySmall(t *testing.T) {
	// End-to-end: generate + exhaustive verification on the smallest case,
	// with a parallel solver pool.
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5",
		blockSize: 5, verify: true, workers: 2, pathEng: "auto", cutEng: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"single-fault check: 0 escapes", "double-fault check: 0 escapes"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("output missing %q:\n%s", want, b.String())
		}
	}
}

func TestRunWritesPlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	var b strings.Builder
	err := run(context.Background(), &b, options{rows: 4, cols: 4,
		blockSize: 5, outFile: path, pathEng: "auto", cutEng: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := fpva.DecodePlan(f)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumVectors() == 0 {
		t.Error("written plan has no vectors")
	}
}
