package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

func TestLoadArrayCase(t *testing.T) {
	a, err := loadArray("5x5", 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNormal() != 39 {
		t.Errorf("nv=%d", a.NumNormal())
	}
}

func TestLoadArrayDims(t *testing.T) {
	a, err := loadArray("", 4, 6, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.NR() != 4 || a.NC() != 6 {
		t.Errorf("dims %dx%d", a.NR(), a.NC())
	}
}

func TestLoadArrayFile(t *testing.T) {
	src := grid.MustNewStandard(3, 3)
	path := filepath.Join(t.TempDir(), "chip.fpva")
	if err := os.WriteFile(path, []byte(grid.Marshal(src)), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := loadArray("", 0, 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNormal() != src.NumNormal() {
		t.Error("file round trip lost valves")
	}
}

func TestLoadArrayErrors(t *testing.T) {
	if _, err := loadArray("", 0, 0, ""); err == nil {
		t.Error("no selector: want error")
	}
	if _, err := loadArray("9x9", 0, 0, ""); err == nil {
		t.Error("unknown case: want error")
	}
	if _, err := loadArray("", 0, 0, "/does/not/exist"); err == nil {
		t.Error("missing file: want error")
	}
}

func TestRunVerifySmall(t *testing.T) {
	// End-to-end: generate + exhaustive verification on the smallest case.
	if err := run(false, "5x5", 0, 0, "", false, 5, false, true, 2, "auto", "auto"); err != nil {
		t.Fatal(err)
	}
}
