package main

// The -daemon client: speaks fpvad's JSON job API so generation runs on a
// shared remote service (plan cache + singleflight) while reporting,
// -dump, -verify and -o behave exactly like a local run. -o writes the
// daemon's plan bytes verbatim, so the file is bit-identical to what the
// daemon serves.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/cmd/internal/api"
	"repro/fpva"
)

// runRemote drives one generate job on a remote fpvad: submit, follow the
// progress stream to completion, fetch the plan, then report locally.
func runRemote(ctx context.Context, w io.Writer, opt options) error {
	a, err := loadArray(opt)
	if err != nil {
		return err
	}
	// Validate engine names locally for a fast exit-2 instead of a 400.
	if _, err := appendEngines(nil, opt.pathEng, opt.cutEng); err != nil {
		return err
	}
	base := strings.TrimRight(opt.daemon, "/")
	var arrBuf bytes.Buffer
	if err := fpva.EncodeArray(&arrBuf, a); err != nil {
		return err
	}
	body, err := json.Marshal(api.SubmitRequest{
		Kind:  "generate",
		Array: arrBuf.Bytes(),
		Generate: &api.GenerateParams{
			Direct:        opt.direct,
			Block:         opt.blockSize,
			PathEngine:    opt.pathEng,
			CutEngine:     opt.cutEng,
			SolverWorkers: opt.workers,
		},
	})
	if err != nil {
		return err
	}
	job, err := submitRemote(ctx, base, body)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "submitted job %s to %s\n", job.ID, base)
	// If this run aborts (-timeout, Ctrl-C) before the job finishes, tell
	// the daemon: jobs outlive their submitting request by design, and an
	// abandoned solve would keep holding a worker-pool slot.
	finished := false
	defer func() {
		if !finished {
			cancelRemote(base, job.ID)
		}
	}()
	final, err := followRemote(ctx, base, job.ID, opt.progress)
	if err != nil {
		return err
	}
	finished = final.State == "done" || final.State == "failed" || final.State == "canceled"
	if final.State != "done" {
		if final.Error != "" {
			return fmt.Errorf("remote job %s %s: %s", final.ID, final.State, final.Error)
		}
		return fmt.Errorf("remote job %s finished %s", final.ID, final.State)
	}
	planBytes, err := fetchRemote(ctx, base+"/v1/jobs/"+job.ID+"/plan")
	if err != nil {
		return err
	}
	plan, err := fpva.DecodePlan(bytes.NewReader(planBytes))
	if err != nil {
		return fmt.Errorf("remote plan: %w", err)
	}
	reportPlan(w, plan)
	if opt.outFile != "" {
		if err := os.WriteFile(opt.outFile, planBytes, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "plan written to %s\n", opt.outFile)
	}
	return finishReport(ctx, w, plan, opt)
}

// cancelRemote is the best-effort abort: it uses its own short deadline
// because the run context is typically already dead when it fires.
func cancelRemote(base, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs/"+id+"/cancel", nil)
	if err != nil {
		return
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

func submitRemote(ctx context.Context, base string, body []byte) (api.Job, error) {
	var job api.Job
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return job, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return job, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return job, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return job, fmt.Errorf("daemon rejected the job: %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	if err := json.Unmarshal(b, &job); err != nil {
		return job, fmt.Errorf("daemon response: %w", err)
	}
	return job, nil
}

// followRemote consumes the NDJSON event stream until the terminal status
// line, optionally echoing progress to stderr.
func followRemote(ctx context.Context, base, id string, progress bool) (api.Job, error) {
	var final api.Job
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return final, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return final, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return final, fmt.Errorf("event stream: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e api.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return final, fmt.Errorf("event stream line %q: %w", sc.Text(), err)
		}
		if e.Event == "" {
			if err := json.Unmarshal(sc.Bytes(), &final); err != nil {
				return final, err
			}
			return final, nil
		}
		if progress {
			switch e.Event {
			case "campaign-tick":
				fmt.Fprintf(os.Stderr, "fpvatest: campaign %d/%d trials\n", e.Done, e.Total)
			default:
				fmt.Fprintf(os.Stderr, "fpvatest: phase %s %s\n",
					e.Phase, strings.TrimPrefix(e.Event, "phase-"))
			}
		}
	}
	if err := sc.Err(); err != nil {
		return final, err
	}
	// Stream ended without a terminal line (dropped connection, buffering
	// proxy): fall back to polling status until the job turns terminal.
	for {
		b, err := fetchRemote(ctx, base+"/v1/jobs/"+id)
		if err != nil {
			return final, err
		}
		if err := json.Unmarshal(b, &final); err != nil {
			return final, err
		}
		switch final.State {
		case "done", "failed", "canceled":
			return final, nil
		}
		select {
		case <-ctx.Done():
			return final, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func fetchRemote(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(b)))
	}
	return b, nil
}
