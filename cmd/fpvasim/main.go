// Command fpvasim reproduces the paper's Sec. IV fault-injection study: it
// generates the test set for a benchmark array, injects k = 1..maxFaults
// random faults per trial, and reports the detection rate per k.
//
// Usage:
//
//	fpvasim -case 10x10 -trials 10000             the paper's experiment
//	fpvasim -case 5x5 -trials 1000 -faults 3      shorter run
//	fpvasim -case 5x5 -leaks                      include control-leak faults
//	fpvasim -case 5x5 -baseline                   use the 2*nv baseline set
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/sim"
)

func main() {
	var (
		caseName  = flag.String("case", "5x5", "Table I array name")
		trials    = flag.Int("trials", 10000, "injections per fault count")
		maxFaults = flag.Int("faults", 5, "maximum number of simultaneous faults")
		seed      = flag.Int64("seed", 2017, "campaign RNG seed")
		workers   = flag.Int("workers", 0, "campaign worker goroutines (0 = all CPUs)")
		leaks     = flag.Bool("leaks", false, "also inject control-leakage faults")
		baseline  = flag.Bool("baseline", false, "evaluate the one-valve-at-a-time baseline instead")
	)
	flag.Parse()
	if err := run(os.Stdout, *caseName, *trials, *maxFaults, *seed, *workers, *leaks, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "fpvasim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, caseName string, trials, maxFaults int, seed int64, workers int, leaks, baseline bool) error {
	c, err := bench.FindCase(caseName)
	if err != nil {
		return err
	}
	a, err := c.Build()
	if err != nil {
		return err
	}
	var vectors []*sim.Vector
	var label string
	t0 := time.Now()
	var ts *core.TestSet
	if baseline {
		vectors, err = bench.BaselineVectors(a)
		if err != nil {
			return err
		}
		label = "baseline"
	} else {
		ts, err = core.Generate(a, core.Config{Hierarchical: true})
		if err != nil {
			return err
		}
		vectors = ts.AllVectors()
		label = "proposed"
	}
	fmt.Fprintf(w, "%s on %v: %d vectors (generated in %v)\n",
		label, a, len(vectors), time.Since(t0).Round(time.Millisecond))

	var leakPairs [][2]grid.ValveID
	if leaks && ts != nil {
		for _, p := range ts.LeakPairs {
			leakPairs = append(leakPairs, [2]grid.ValveID{p[0], p[1]})
		}
	}
	s, err := sim.New(a)
	if err != nil {
		return err
	}
	cv := s.Compile(vectors)
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s\n", "faults", "trials", "detected", "rate")
	for k := 1; k <= maxFaults; k++ {
		res := cv.RunCampaign(sim.CampaignConfig{
			Trials: trials, NumFaults: k, Seed: seed + int64(k),
			Workers: workers, LeakPairs: leakPairs,
		})
		fmt.Fprintf(w, "%-8d %-10d %-10d %.4f\n", k, res.Trials, res.Detected, res.DetectionRate())
		for _, esc := range res.Escapes {
			fmt.Fprintf(w, "  escape: %v\n", esc)
		}
	}
	return nil
}
