// Command fpvasim reproduces the paper's Sec. IV fault-injection study: it
// takes a test plan — generated in-process or loaded from fpvatest -o
// output — injects k = 1..maxFaults random faults per trial, and reports
// the detection rate per k. It is a thin shell over the public fpva
// package.
//
// Usage:
//
//	fpvasim -case 10x10 -trials 10000             the paper's experiment
//	fpvasim -rows 8 -cols 8                       a full custom array
//	fpvasim -plan plan.json -trials 100000        replay a serialized plan
//	fpvasim -case 5x5 -trials 1000 -faults 3      shorter run
//	fpvasim -case 5x5 -leaks                      include control-leak faults
//	fpvasim -case 5x5 -baseline                   use the 2*nv baseline set
//
// Exactly one of -case, -rows/-cols and -plan must be given; -baseline
// requires in-process generation and is incompatible with -plan.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/fpva"
)

type options struct {
	caseName   string
	rows       int
	cols       int
	planFile   string
	trials     int
	maxFaults  int
	seed       int64
	workers    int
	maxEscapes int
	leaks      bool
	baseline   bool
	progress   bool
}

func main() {
	var opt options
	flag.StringVar(&opt.caseName, "case", "", "Table I array name (5x5, 10x10, 15x15, 20x20, 30x30)")
	flag.IntVar(&opt.rows, "rows", 0, "custom full array rows")
	flag.IntVar(&opt.cols, "cols", 0, "custom full array columns")
	flag.StringVar(&opt.planFile, "plan", "", "replay a plan serialized by fpvatest -o")
	flag.IntVar(&opt.trials, "trials", 10000, "injections per fault count")
	flag.IntVar(&opt.maxFaults, "faults", 5, "maximum number of simultaneous faults")
	flag.Int64Var(&opt.seed, "seed", 2017, "campaign RNG seed")
	flag.IntVar(&opt.workers, "workers", 0, "campaign worker goroutines (0 = all CPUs)")
	flag.IntVar(&opt.maxEscapes, "max-escapes", 0, "cap on recorded undetected fault sets (0 = default 16)")
	flag.BoolVar(&opt.leaks, "leaks", false, "also inject control-leakage faults")
	flag.BoolVar(&opt.baseline, "baseline", false, "evaluate the one-valve-at-a-time baseline instead")
	flag.BoolVar(&opt.progress, "progress", false, "report campaign trial progress on stderr")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "fpvasim:", err)
		os.Exit(1)
	}
}

// validateSelectors enforces that exactly one plan source is chosen.
func validateSelectors(opt options) error {
	n := 0
	if opt.caseName != "" {
		n++
	}
	if opt.rows != 0 || opt.cols != 0 {
		if opt.rows <= 0 || opt.cols <= 0 {
			return fmt.Errorf("-rows and -cols must both be positive (got %d, %d)", opt.rows, opt.cols)
		}
		n++
	}
	if opt.planFile != "" {
		if opt.baseline {
			return fmt.Errorf("-baseline regenerates vectors and cannot be combined with -plan")
		}
		n++
	}
	switch n {
	case 0:
		return fmt.Errorf("specify exactly one of -case, -rows/-cols, or -plan (see -h)")
	case 1:
		return nil
	}
	return fmt.Errorf("-case, -rows/-cols and -plan are mutually exclusive; pick one")
}

func run(ctx context.Context, w io.Writer, opt options) error {
	if err := validateSelectors(opt); err != nil {
		return err
	}
	plan, label, err := loadPlan(ctx, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s on %v: %d vectors\n", label, plan.Array(), plan.NumVectors())
	campOpts := []fpva.CampaignOption{
		fpva.WithTrials(opt.trials),
		fpva.WithCampaignWorkers(opt.workers),
		fpva.WithMaxEscapes(opt.maxEscapes),
	}
	if opt.leaks {
		campOpts = append(campOpts, fpva.WithLeakFaults())
	}
	if opt.progress {
		campOpts = append(campOpts, fpva.WithCampaignProgress(func(e fpva.Event) {
			fmt.Fprintf(os.Stderr, "fpvasim: %v\n", e)
		}))
	}
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s\n", "faults", "trials", "detected", "rate")
	for k := 1; k <= opt.maxFaults; k++ {
		res, err := plan.Campaign(ctx, append(campOpts,
			fpva.WithNumFaults(k), fpva.WithSeed(opt.seed+int64(k)))...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %-10d %-10d %.4f\n", k, res.Trials, res.Detected, res.DetectionRate())
		for _, esc := range res.Escapes {
			fmt.Fprintf(w, "  escape: %v\n", esc)
		}
	}
	return nil
}

// loadPlan resolves the plan source: a serialized file, or in-process
// generation (proposed flow or baseline) for the selected array.
func loadPlan(ctx context.Context, opt options) (*fpva.Plan, string, error) {
	if opt.planFile != "" {
		f, err := os.Open(opt.planFile)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		plan, err := fpva.DecodePlan(f)
		if err != nil {
			return nil, "", err
		}
		return plan, "plan " + opt.planFile, nil
	}
	var a *fpva.Array
	var err error
	if opt.caseName != "" {
		a, err = fpva.BenchmarkArray(opt.caseName)
	} else {
		a, err = fpva.NewArray(opt.rows, opt.cols)
	}
	if err != nil {
		return nil, "", err
	}
	if opt.baseline {
		plan, err := fpva.BaselinePlan(a)
		return plan, "baseline", err
	}
	t0 := time.Now()
	plan, err := fpva.Generate(ctx, a)
	if err != nil {
		return nil, "", err
	}
	return plan, fmt.Sprintf("proposed (generated in %v)", time.Since(t0).Round(time.Millisecond)), nil
}
