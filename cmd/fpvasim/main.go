// Command fpvasim reproduces the paper's Sec. IV fault-injection study: it
// takes a test plan — generated in-process or loaded from fpvatest -o
// output — injects k = 1..maxFaults random faults per trial, and reports
// the detection rate per k. It is a thin shell over the public fpva
// package.
//
// Usage:
//
//	fpvasim -case 10x10 -trials 10000             the paper's experiment
//	fpvasim -rows 8 -cols 8                       a full custom array
//	fpvasim -plan plan.json -trials 100000        replay a serialized plan
//	fpvasim -case 5x5 -trials 1000 -faults 3      shorter run
//	fpvasim -case 5x5 -leaks                      include control-leak faults
//	fpvasim -case 5x5 -baseline                   use the 2*nv baseline set
//	fpvasim -case 20x20 -timeout 1m               abort (exit 2) past a deadline
//	fpvasim -case 5x5 -diagnose                   closed-loop diagnosis study
//	fpvasim -case 10x10 -diagnose -diagnose-trials 50 -planner ilp
//
// With -diagnose, instead of a detection campaign the tool injects each
// single stuck-at fault as a hidden defect, answers the diagnosis
// engine's adaptive probes from the simulator, and reports
// probes-to-isolation statistics per fault kind. -diagnose-trials caps
// the study to a seeded sample of faults (0 = exhaustive); the run is
// deterministic for a fixed seed.
//
// Exactly one of -case, -rows/-cols and -plan must be given; -baseline
// requires in-process generation and is incompatible with -plan.
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage errors and
// deadline expiry (-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"repro/cmd/internal/cli"
	"repro/fpva"
)

type options struct {
	caseName   string
	rows       int
	cols       int
	planFile   string
	trials     int
	maxFaults  int
	seed       int64
	workers    int
	maxEscapes int
	engine     string
	leaks      bool
	baseline   bool
	progress   bool
	timeout    time.Duration
	diagnose   bool
	diagTrials int
	planner    string
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	opt, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
		defer cancel()
	}
	if err := run(ctx, stdout, opt); err != nil {
		fmt.Fprintln(stderr, "fpvasim:", err)
		return exitCode(err)
	}
	return 0
}

// usagef / exitCode alias the repo-wide CLI exit-code contract
// (cmd/internal/cli): usage 2, deadline 2, runtime 1, success 0.
var (
	usagef   = cli.Usagef
	exitCode = cli.ExitCode
)

func parseFlags(args []string, stderr io.Writer) (options, error) {
	var opt options
	fs := flag.NewFlagSet("fpvasim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&opt.caseName, "case", "", "Table I array name (5x5, 10x10, 15x15, 20x20, 30x30)")
	fs.IntVar(&opt.rows, "rows", 0, "custom full array rows")
	fs.IntVar(&opt.cols, "cols", 0, "custom full array columns")
	fs.StringVar(&opt.planFile, "plan", "", "replay a plan serialized by fpvatest -o")
	fs.IntVar(&opt.trials, "trials", 10000, "injections per fault count")
	fs.IntVar(&opt.maxFaults, "faults", 5, "maximum number of simultaneous faults")
	fs.Int64Var(&opt.seed, "seed", 2017, "campaign RNG seed")
	fs.IntVar(&opt.workers, "workers", 0, "campaign worker goroutines (0 = all CPUs)")
	fs.IntVar(&opt.maxEscapes, "max-escapes", 0, "cap on recorded undetected fault sets (0 = default 16)")
	fs.StringVar(&opt.engine, "engine", "auto", "campaign engine: auto, bit-parallel, scalar")
	fs.BoolVar(&opt.leaks, "leaks", false, "also inject control-leakage faults")
	fs.BoolVar(&opt.baseline, "baseline", false, "evaluate the one-valve-at-a-time baseline instead")
	fs.BoolVar(&opt.progress, "progress", false, "report campaign trial progress on stderr")
	fs.DurationVar(&opt.timeout, "timeout", 0, "abort after this duration (exit code 2)")
	fs.BoolVar(&opt.diagnose, "diagnose", false, "run the closed-loop diagnosis study instead of a campaign")
	fs.IntVar(&opt.diagTrials, "diagnose-trials", 0, "sample this many hidden faults (0 = every single stuck-at fault)")
	fs.StringVar(&opt.planner, "planner", "greedy", "diagnosis probe planner: greedy, ilp")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return opt, err
		}
		return opt, usagef("%v", err)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fpvasim: unexpected argument %q\n", fs.Arg(0))
		return opt, usagef("unexpected argument %q", fs.Arg(0))
	}
	return opt, nil
}

// validateSelectors enforces that exactly one plan source is chosen.
func validateSelectors(opt options) error {
	n := 0
	if opt.caseName != "" {
		n++
	}
	if opt.rows != 0 || opt.cols != 0 {
		if opt.rows <= 0 || opt.cols <= 0 {
			return usagef("-rows and -cols must both be positive (got %d, %d)", opt.rows, opt.cols)
		}
		n++
	}
	if opt.planFile != "" {
		if opt.baseline {
			return usagef("-baseline regenerates vectors and cannot be combined with -plan")
		}
		n++
	}
	switch n {
	case 0:
		return usagef("specify exactly one of -case, -rows/-cols, or -plan (see -h)")
	case 1:
		return nil
	}
	return usagef("-case, -rows/-cols and -plan are mutually exclusive; pick one")
}

func run(ctx context.Context, w io.Writer, opt options) error {
	if err := validateSelectors(opt); err != nil {
		return err
	}
	engineName := opt.engine
	if engineName == "" {
		engineName = "auto"
	}
	engine, err := fpva.ParseCampaignEngine(engineName)
	if err != nil {
		return usagef("%v", err)
	}
	plan, label, err := loadPlan(ctx, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s on %v: %d vectors\n", label, plan.Array(), plan.NumVectors())
	if opt.diagnose {
		return runDiagnose(ctx, w, opt, plan, engine)
	}
	campOpts := []fpva.CampaignOption{
		fpva.WithTrials(opt.trials),
		fpva.WithCampaignWorkers(opt.workers),
		fpva.WithMaxEscapes(opt.maxEscapes),
		fpva.WithCampaignEngine(engine),
	}
	if opt.leaks {
		campOpts = append(campOpts, fpva.WithLeakFaults())
	}
	if opt.progress {
		campOpts = append(campOpts, fpva.WithCampaignProgress(func(e fpva.Event) {
			fmt.Fprintf(os.Stderr, "fpvasim: %v\n", e)
		}))
	}
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s\n", "faults", "trials", "detected", "rate")
	for k := 1; k <= opt.maxFaults; k++ {
		res, err := plan.Campaign(ctx, append(campOpts,
			fpva.WithNumFaults(k), fpva.WithSeed(opt.seed+int64(k)))...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %-10d %-10d %.4f\n", k, res.Trials, res.Detected, res.DetectionRate())
		for _, esc := range res.Escapes {
			fmt.Fprintf(w, "  escape: %v\n", esc)
		}
	}
	return nil
}

// diagState accumulates per-fault-kind closed-loop outcomes.
type diagState struct {
	trials    int
	isolated  int // sessions ending with exactly one signature class
	singleton int // ... whose class is the true fault alone
	probes    int
	maxProbes int
	maxClass  int
}

// runDiagnose is the -diagnose mode: inject each hidden single fault,
// answer the engine's adaptive probes from the simulator, and tabulate
// probes-to-isolation. Everything is deterministic for a fixed seed —
// fault order follows the array's valve order and sampling uses a seeded
// shuffle.
func runDiagnose(ctx context.Context, w io.Writer, opt options, plan *fpva.Plan, engine fpva.CampaignEngine) error {
	if opt.diagTrials < 0 {
		return usagef("-diagnose-trials must be >= 0")
	}
	planner, err := fpva.ParseProbePlanner(opt.planner)
	if err != nil {
		return usagef("%v", err)
	}
	a := plan.Array()
	sim, err := a.NewSimulator()
	if err != nil {
		return err
	}
	vecs, err := planVectors(a, plan)
	if err != nil {
		return err
	}
	kinds := []fpva.FaultKind{fpva.StuckAt0, fpva.StuckAt1}
	var hidden []fpva.Fault
	for _, kind := range kinds {
		for _, e := range a.Valves() {
			hidden = append(hidden, fpva.Fault{Kind: kind, A: e})
		}
	}
	if opt.diagTrials > 0 && opt.diagTrials < len(hidden) {
		rng := rand.New(rand.NewSource(opt.seed))
		rng.Shuffle(len(hidden), func(i, j int) { hidden[i], hidden[j] = hidden[j], hidden[i] })
		hidden = hidden[:opt.diagTrials]
	}
	sessOpts := []fpva.DiagnoseOption{
		fpva.WithProbePlanner(planner),
		fpva.WithDiagnoseEngine(engine),
	}
	if opt.workers > 0 {
		sessOpts = append(sessOpts, fpva.WithDiagnoseWorkers(opt.workers))
	}
	fmt.Fprintf(w, "diagnosis (%s planner): %d hidden faults\n", planner, len(hidden))
	stats := make(map[fpva.FaultKind]*diagState, len(kinds))
	for _, kind := range kinds {
		stats[kind] = &diagState{}
	}
	for _, h := range hidden {
		probes, classSize, amb, err := diagnoseOne(ctx, plan, sim, vecs, h, sessOpts)
		if err != nil {
			return fmt.Errorf("hidden %v: %w", h, err)
		}
		st := stats[h.Kind]
		st.trials++
		st.probes += probes
		st.maxProbes = max(st.maxProbes, probes)
		st.maxClass = max(st.maxClass, classSize)
		if classSize > 0 {
			st.isolated++
			if classSize == 1 {
				st.singleton++
			}
		}
		if opt.progress {
			fmt.Fprintf(os.Stderr, "fpvasim: %v isolated to %d candidate(s) in %d probe(s) %v\n", h, classSize, probes, amb)
		}
	}
	fmt.Fprintf(w, "%-12s %-8s %-10s %-10s %-10s %-10s %-9s\n",
		"kind", "faults", "isolated", "singleton", "avg-probe", "max-probe", "max-class")
	for _, kind := range kinds {
		st := stats[kind]
		if st.trials == 0 {
			continue
		}
		fmt.Fprintf(w, "%-12v %-8d %-10d %-10d %-10.2f %-10d %-9d\n",
			kind, st.trials, st.isolated, st.singleton,
			float64(st.probes)/float64(st.trials), st.maxProbes, st.maxClass)
	}
	return nil
}

// diagnoseOne plays one closed loop: the hidden fault is injected in the
// simulator and the session's suggested probes are answered until it
// stops asking. It returns the probe count and the size of the surviving
// class (which must contain the hidden fault).
func diagnoseOne(ctx context.Context, plan *fpva.Plan, sim *fpva.Simulator, vecs []*fpva.Vector, h fpva.Fault, opts []fpva.DiagnoseOption) (probes, classSize int, amb [][]fpva.Fault, err error) {
	sess, err := plan.NewDiagnoseSession(ctx, opts...)
	if err != nil {
		return 0, 0, nil, err
	}
	injected := []fpva.Fault{h}
	for {
		v, err := sess.NextProbe(ctx)
		if err != nil {
			return 0, 0, nil, err
		}
		if v < 0 {
			break
		}
		r, err := sim.Readings(vecs[v], injected)
		if err != nil {
			return 0, 0, nil, err
		}
		if err := sess.Observe(fpva.Observation{Vector: v, Readings: r}); err != nil {
			return 0, 0, nil, err
		}
		if probes++; probes > len(vecs) {
			return 0, 0, nil, fmt.Errorf("session asked for more probes than plan vectors (%d)", len(vecs))
		}
	}
	d, err := sess.Diagnosis(ctx)
	if err != nil {
		return 0, 0, nil, err
	}
	if !d.Consistent {
		return 0, 0, nil, errors.New("observations inconsistent with the candidate universe")
	}
	if !d.Isolated {
		return 0, 0, nil, fmt.Errorf("not isolated after %d probes (%d classes survive)", probes, len(d.Classes))
	}
	found := false
	for _, fs := range d.Ambiguity {
		if len(fs) == 1 && fs[0] == h {
			found = true
			break
		}
	}
	if !found {
		return 0, 0, nil, errors.New("true fault eliminated from the ambiguity set")
	}
	return probes, len(d.Ambiguity), d.Ambiguity, nil
}

// planVectors materializes the plan's vectors as applicable Vector
// values, so the simulator can answer probes against them.
func planVectors(a *fpva.Array, plan *fpva.Plan) ([]*fpva.Vector, error) {
	infos := plan.Vectors()
	out := make([]*fpva.Vector, len(infos))
	for i, vi := range infos {
		v := a.NewVector(vi.Name)
		for _, e := range vi.Open {
			if err := v.SetOpen(e, true); err != nil {
				return nil, err
			}
		}
		out[i] = v
	}
	return out, nil
}

// loadPlan resolves the plan source: a serialized file, or in-process
// generation (proposed flow or baseline) for the selected array.
func loadPlan(ctx context.Context, opt options) (*fpva.Plan, string, error) {
	if opt.planFile != "" {
		f, err := os.Open(opt.planFile)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		plan, err := fpva.DecodePlan(f)
		if err != nil {
			return nil, "", err
		}
		return plan, "plan " + opt.planFile, nil
	}
	var a *fpva.Array
	var err error
	if opt.caseName != "" {
		a, err = fpva.BenchmarkArray(opt.caseName)
	} else {
		a, err = fpva.NewArray(opt.rows, opt.cols)
	}
	if err != nil {
		return nil, "", err
	}
	if opt.baseline {
		plan, err := fpva.BaselinePlan(a)
		return plan, "baseline", err
	}
	t0 := time.Now()
	plan, err := fpva.Generate(ctx, a)
	if err != nil {
		return nil, "", err
	}
	return plan, fmt.Sprintf("proposed (generated in %v)", time.Since(t0).Round(time.Millisecond)), nil
}
