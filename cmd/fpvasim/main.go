// Command fpvasim reproduces the paper's Sec. IV fault-injection study: it
// takes a test plan — generated in-process or loaded from fpvatest -o
// output — injects k = 1..maxFaults random faults per trial, and reports
// the detection rate per k. It is a thin shell over the public fpva
// package.
//
// Usage:
//
//	fpvasim -case 10x10 -trials 10000             the paper's experiment
//	fpvasim -rows 8 -cols 8                       a full custom array
//	fpvasim -plan plan.json -trials 100000        replay a serialized plan
//	fpvasim -case 5x5 -trials 1000 -faults 3      shorter run
//	fpvasim -case 5x5 -leaks                      include control-leak faults
//	fpvasim -case 5x5 -baseline                   use the 2*nv baseline set
//	fpvasim -case 20x20 -timeout 1m               abort (exit 2) past a deadline
//
// Exactly one of -case, -rows/-cols and -plan must be given; -baseline
// requires in-process generation and is incompatible with -plan.
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage errors and
// deadline expiry (-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/cmd/internal/cli"
	"repro/fpva"
)

type options struct {
	caseName   string
	rows       int
	cols       int
	planFile   string
	trials     int
	maxFaults  int
	seed       int64
	workers    int
	maxEscapes int
	engine     string
	leaks      bool
	baseline   bool
	progress   bool
	timeout    time.Duration
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	opt, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if opt.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.timeout)
		defer cancel()
	}
	if err := run(ctx, stdout, opt); err != nil {
		fmt.Fprintln(stderr, "fpvasim:", err)
		return exitCode(err)
	}
	return 0
}

// usagef / exitCode alias the repo-wide CLI exit-code contract
// (cmd/internal/cli): usage 2, deadline 2, runtime 1, success 0.
var (
	usagef   = cli.Usagef
	exitCode = cli.ExitCode
)

func parseFlags(args []string, stderr io.Writer) (options, error) {
	var opt options
	fs := flag.NewFlagSet("fpvasim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&opt.caseName, "case", "", "Table I array name (5x5, 10x10, 15x15, 20x20, 30x30)")
	fs.IntVar(&opt.rows, "rows", 0, "custom full array rows")
	fs.IntVar(&opt.cols, "cols", 0, "custom full array columns")
	fs.StringVar(&opt.planFile, "plan", "", "replay a plan serialized by fpvatest -o")
	fs.IntVar(&opt.trials, "trials", 10000, "injections per fault count")
	fs.IntVar(&opt.maxFaults, "faults", 5, "maximum number of simultaneous faults")
	fs.Int64Var(&opt.seed, "seed", 2017, "campaign RNG seed")
	fs.IntVar(&opt.workers, "workers", 0, "campaign worker goroutines (0 = all CPUs)")
	fs.IntVar(&opt.maxEscapes, "max-escapes", 0, "cap on recorded undetected fault sets (0 = default 16)")
	fs.StringVar(&opt.engine, "engine", "auto", "campaign engine: auto, bit-parallel, scalar")
	fs.BoolVar(&opt.leaks, "leaks", false, "also inject control-leakage faults")
	fs.BoolVar(&opt.baseline, "baseline", false, "evaluate the one-valve-at-a-time baseline instead")
	fs.BoolVar(&opt.progress, "progress", false, "report campaign trial progress on stderr")
	fs.DurationVar(&opt.timeout, "timeout", 0, "abort after this duration (exit code 2)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return opt, err
		}
		return opt, usagef("%v", err)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fpvasim: unexpected argument %q\n", fs.Arg(0))
		return opt, usagef("unexpected argument %q", fs.Arg(0))
	}
	return opt, nil
}

// validateSelectors enforces that exactly one plan source is chosen.
func validateSelectors(opt options) error {
	n := 0
	if opt.caseName != "" {
		n++
	}
	if opt.rows != 0 || opt.cols != 0 {
		if opt.rows <= 0 || opt.cols <= 0 {
			return usagef("-rows and -cols must both be positive (got %d, %d)", opt.rows, opt.cols)
		}
		n++
	}
	if opt.planFile != "" {
		if opt.baseline {
			return usagef("-baseline regenerates vectors and cannot be combined with -plan")
		}
		n++
	}
	switch n {
	case 0:
		return usagef("specify exactly one of -case, -rows/-cols, or -plan (see -h)")
	case 1:
		return nil
	}
	return usagef("-case, -rows/-cols and -plan are mutually exclusive; pick one")
}

func run(ctx context.Context, w io.Writer, opt options) error {
	if err := validateSelectors(opt); err != nil {
		return err
	}
	engineName := opt.engine
	if engineName == "" {
		engineName = "auto"
	}
	engine, err := fpva.ParseCampaignEngine(engineName)
	if err != nil {
		return usagef("%v", err)
	}
	plan, label, err := loadPlan(ctx, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s on %v: %d vectors\n", label, plan.Array(), plan.NumVectors())
	campOpts := []fpva.CampaignOption{
		fpva.WithTrials(opt.trials),
		fpva.WithCampaignWorkers(opt.workers),
		fpva.WithMaxEscapes(opt.maxEscapes),
		fpva.WithCampaignEngine(engine),
	}
	if opt.leaks {
		campOpts = append(campOpts, fpva.WithLeakFaults())
	}
	if opt.progress {
		campOpts = append(campOpts, fpva.WithCampaignProgress(func(e fpva.Event) {
			fmt.Fprintf(os.Stderr, "fpvasim: %v\n", e)
		}))
	}
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s\n", "faults", "trials", "detected", "rate")
	for k := 1; k <= opt.maxFaults; k++ {
		res, err := plan.Campaign(ctx, append(campOpts,
			fpva.WithNumFaults(k), fpva.WithSeed(opt.seed+int64(k)))...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %-10d %-10d %.4f\n", k, res.Trials, res.Detected, res.DetectionRate())
		for _, esc := range res.Escapes {
			fmt.Fprintf(w, "  escape: %v\n", esc)
		}
	}
	return nil
}

// loadPlan resolves the plan source: a serialized file, or in-process
// generation (proposed flow or baseline) for the selected array.
func loadPlan(ctx context.Context, opt options) (*fpva.Plan, string, error) {
	if opt.planFile != "" {
		f, err := os.Open(opt.planFile)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		plan, err := fpva.DecodePlan(f)
		if err != nil {
			return nil, "", err
		}
		return plan, "plan " + opt.planFile, nil
	}
	var a *fpva.Array
	var err error
	if opt.caseName != "" {
		a, err = fpva.BenchmarkArray(opt.caseName)
	} else {
		a, err = fpva.NewArray(opt.rows, opt.cols)
	}
	if err != nil {
		return nil, "", err
	}
	if opt.baseline {
		plan, err := fpva.BaselinePlan(a)
		return plan, "baseline", err
	}
	t0 := time.Now()
	plan, err := fpva.Generate(ctx, a)
	if err != nil {
		return nil, "", err
	}
	return plan, fmt.Sprintf("proposed (generated in %v)", time.Since(t0).Round(time.Millisecond)), nil
}
