package main

import (
	"strings"
	"testing"
)

func TestRunSmallCampaign(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "5x5", 100, 2, 1, 0, false, false); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"proposed", "faults", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithLeaks(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "5x5", 50, 3, 7, 2, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "proposed") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunBaseline(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "5x5", 50, 1, 1, 1, false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "baseline") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunWorkerCountsAgree(t *testing.T) {
	// The campaign must print identical detection tables no matter how many
	// workers shard the trials.
	var seq, par strings.Builder
	if err := run(&seq, "5x5", 200, 3, 42, 1, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&par, "5x5", 200, 3, 42, 8, false, false); err != nil {
		t.Fatal(err)
	}
	trim := func(s string) string {
		// Drop the first line: it carries generation wall-clock time.
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if trim(seq.String()) != trim(par.String()) {
		t.Errorf("worker counts disagree:\n-- workers=1 --\n%s-- workers=8 --\n%s",
			seq.String(), par.String())
	}
}

func TestRunUnknownCase(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "7x7", 10, 1, 1, 1, false, false); err == nil {
		t.Error("unknown case accepted")
	}
}
