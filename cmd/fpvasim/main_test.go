package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/fpva"
)

// TestParseFlags is the table-driven flag contract, including -timeout.
func TestParseFlags(t *testing.T) {
	for _, tc := range []struct {
		name  string
		args  []string
		code  int
		check func(options) bool
	}{
		{"defaults", nil, 0, func(o options) bool {
			return o.trials == 10000 && o.maxFaults == 5 && o.seed == 2017 && o.timeout == 0
		}},
		{"timeout", []string{"-timeout", "90s"}, 0, func(o options) bool {
			return o.timeout == 90*time.Second
		}},
		{"plan and trials", []string{"-plan", "p.json", "-trials", "500"}, 0, func(o options) bool {
			return o.planFile == "p.json" && o.trials == 500
		}},
		{"bad timeout", []string{"-timeout", "never"}, 2, nil},
		{"unknown flag", []string{"-nope"}, 2, nil},
		{"stray argument", []string{"extra"}, 2, nil},
	} {
		var errb strings.Builder
		opt, err := parseFlags(tc.args, &errb)
		if got := exitCode(err); got != tc.code {
			t.Errorf("%s: exit %d, want %d (err %v)", tc.name, got, tc.code, err)
			continue
		}
		if tc.check != nil && err == nil && !tc.check(opt) {
			t.Errorf("%s: options %+v", tc.name, opt)
		}
	}
}

// TestExitCodes pins the error classification: usage 2, deadline 2,
// runtime 1, success 0.
func TestExitCodes(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Errorf("nil: %d", got)
	}
	if got := exitCode(usagef("bad")); got != 2 {
		t.Errorf("usage: %d", got)
	}
	if got := exitCode(fmt.Errorf("campaign: %w", context.DeadlineExceeded)); got != 2 {
		t.Errorf("wrapped deadline: %d", got)
	}
	if got := exitCode(fmt.Errorf("boom")); got != 1 {
		t.Errorf("runtime: %d", got)
	}
}

// TestRealMainExitCodes runs the binary entry point end to end per class,
// including a deadline abort mid-campaign.
func TestRealMainExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"flag error", []string{"-nope"}, 2},
		{"no selector", nil, 2},
		{"ambiguous selectors", []string{"-case", "5x5", "-rows", "3", "-cols", "3"}, 2},
		{"baseline with plan", []string{"-plan", "p.json", "-baseline"}, 2},
		{"runtime failure", []string{"-case", "7x7"}, 1},
		{"missing plan file", []string{"-plan", "/nonexistent/plan.json"}, 1},
		{"success", []string{"-rows", "3", "-cols", "3", "-trials", "20", "-faults", "1"}, 0},
		{"deadline", []string{"-case", "5x5", "-trials", "100000000", "-timeout", "50ms"}, 2},
	} {
		var out, errb strings.Builder
		if got := realMain(tc.args, &out, &errb); got != tc.code {
			t.Errorf("%s: exit %d, want %d (stderr %q)", tc.name, got, tc.code, errb.String())
		}
	}
}

func TestValidateSelectors(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  options
		ok   bool
	}{
		{"none", options{}, false},
		{"case", options{caseName: "5x5"}, true},
		{"dims", options{rows: 4, cols: 4}, true},
		{"rows only", options{rows: 4}, false},
		{"plan", options{planFile: "p.json"}, true},
		{"case and plan", options{caseName: "5x5", planFile: "p.json"}, false},
		{"case and dims", options{caseName: "5x5", rows: 4, cols: 4}, false},
		{"plan and baseline", options{planFile: "p.json", baseline: true}, false},
	} {
		err := validateSelectors(tc.opt)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestRunSmallCampaign(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5",
		trials: 100, maxFaults: 2, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"proposed", "faults", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithLeaks(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5",
		trials: 50, maxFaults: 3, seed: 7, workers: 2, leaks: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "proposed") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunBaseline(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5",
		trials: 50, maxFaults: 1, seed: 1, workers: 1, baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "baseline") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunCustomDims(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{rows: 4, cols: 4,
		trials: 50, maxFaults: 1, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "FPVA 4x4") {
		t.Errorf("output:\n%s", b.String())
	}
}

// TestRunDiagnose: the -diagnose study isolates every single stuck-at
// fault on a small array, and its output is bit-identical across worker
// counts and repeat runs.
func TestRunDiagnose(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4} {
		var b strings.Builder
		err := run(context.Background(), &b, options{rows: 3, cols: 3,
			diagnose: true, seed: 9, planner: "greedy", workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := b.String()
		if workers == 1 {
			want = out
			for _, sub := range []string{"diagnosis (greedy planner)", "stuck-at-0", "stuck-at-1", "singleton"} {
				if !strings.Contains(out, sub) {
					t.Errorf("output missing %q:\n%s", sub, out)
				}
			}
		} else if out != want {
			t.Errorf("workers=%d output diverges:\n%s\nvs workers=1:\n%s", workers, out, want)
		}
	}
}

// TestRunDiagnoseSampled: -diagnose-trials takes a deterministic seeded
// sample, and the ILP planner drives the same loop.
func TestRunDiagnoseSampled(t *testing.T) {
	outs := make([]string, 2)
	for i := range outs {
		var b strings.Builder
		err := run(context.Background(), &b, options{caseName: "5x5",
			diagnose: true, diagTrials: 6, seed: 4, planner: "ilp"})
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = b.String()
	}
	if outs[0] != outs[1] {
		t.Errorf("sampled diagnose runs diverge:\n%s\nvs\n%s", outs[0], outs[1])
	}
	if !strings.Contains(outs[0], "diagnosis (ilp planner): 6 hidden faults") {
		t.Errorf("output:\n%s", outs[0])
	}
}

// TestRunDiagnoseUsageErrors: bad planner names and negative sample
// counts are usage errors (exit code 2).
func TestRunDiagnoseUsageErrors(t *testing.T) {
	for name, opt := range map[string]options{
		"bad planner":     {rows: 3, cols: 3, diagnose: true, planner: "psychic"},
		"negative trials": {rows: 3, cols: 3, diagnose: true, planner: "greedy", diagTrials: -1},
	} {
		err := run(context.Background(), io.Discard, opt)
		if exitCode(err) != 2 {
			t.Errorf("%s: exit %d (err %v), want 2", name, exitCode(err), err)
		}
	}
}

// TestRunPlanFileMatchesInProcess is the wire-format acceptance check: a
// plan serialized by the fpvatest flow and replayed via -plan must produce
// the same campaign table as the in-process path for the same seed.
func TestRunPlanFileMatchesInProcess(t *testing.T) {
	a, err := fpva.BenchmarkArray("5x5")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fpva.Generate(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fpva.EncodePlan(f, plan); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var inproc, replay strings.Builder
	if err := run(context.Background(), &inproc, options{caseName: "5x5",
		trials: 300, maxFaults: 3, seed: 42}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &replay, options{planFile: path,
		trials: 300, maxFaults: 3, seed: 42}); err != nil {
		t.Fatal(err)
	}
	trim := func(s string) string {
		// Drop the first line: it carries the plan source label and
		// generation wall-clock time.
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if trim(inproc.String()) != trim(replay.String()) {
		t.Errorf("plan replay diverges from in-process run:\n-- in-process --\n%s-- replay --\n%s",
			inproc.String(), replay.String())
	}
}

func TestRunWorkerCountsAgree(t *testing.T) {
	// The campaign must print identical detection tables no matter how many
	// workers shard the trials.
	var seq, par strings.Builder
	if err := run(context.Background(), &seq, options{caseName: "5x5",
		trials: 200, maxFaults: 3, seed: 42, workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &par, options{caseName: "5x5",
		trials: 200, maxFaults: 3, seed: 42, workers: 8}); err != nil {
		t.Fatal(err)
	}
	trim := func(s string) string {
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if trim(seq.String()) != trim(par.String()) {
		t.Errorf("worker counts disagree:\n-- workers=1 --\n%s-- workers=8 --\n%s",
			seq.String(), par.String())
	}
}

func TestRunUnknownCase(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "7x7",
		trials: 10, maxFaults: 1, seed: 1})
	if err == nil {
		t.Error("unknown case accepted")
	}
}

func TestRunEnginesAgree(t *testing.T) {
	// The scalar and bit-parallel engines must print identical detection
	// tables; "auto" and the zero-valued options default must too.
	outputs := map[string]string{}
	for _, engine := range []string{"", "auto", "scalar", "bit-parallel"} {
		var b strings.Builder
		if err := run(context.Background(), &b, options{caseName: "5x5",
			trials: 150, maxFaults: 3, seed: 42, workers: 2, engine: engine}); err != nil {
			t.Fatalf("engine=%q: %v", engine, err)
		}
		outputs[engine] = b.String()
	}
	for engine, out := range outputs {
		if out != outputs["scalar"] {
			t.Errorf("engine=%q diverges from scalar:\n%s\nvs\n%s", engine, out, outputs["scalar"])
		}
	}
}

func TestRunUnknownEngine(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), &b, options{caseName: "5x5",
		trials: 10, maxFaults: 1, seed: 1, engine: "simd"})
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	if code := exitCode(err); code != 2 {
		t.Fatalf("unknown engine exit code %d, want 2 (usage)", code)
	}
}
