package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSuiteCleanOnRepo is the acceptance smoke test: the full analyzer
// suite must exit 0 on the repo's own tree. go vet is skipped here (the
// Makefile runs it); everything else runs exactly as `make lint` does.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	var out bytes.Buffer
	code := run("../..", []string{"-vet=false", "./..."}, &out, &out)
	if code != 0 {
		t.Fatalf("fpvalint is not clean on the repo tree (exit %d):\n%s", code, out.String())
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out bytes.Buffer
	if code := run("../..", []string{"-list"}, &out, &out); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, want := range []string{"fpva/detorder", "fpva/allocfree", "fpva/ctxflow", "fpva/apiboundary", "fpva/lostcancel", "fpva/nilness"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %s:\n%s", want, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out bytes.Buffer
	if code := run("../..", []string{"-only", "nosuch"}, &out, &out); code != 2 {
		t.Fatalf("-only nosuch exited %d, want 2", code)
	}
}
