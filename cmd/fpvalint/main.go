// Command fpvalint is the repo's static-analysis driver: one command that
// machine-checks the conventions the test suite can only sample —
// deterministic iteration in solver packages (fpva/detorder), annotated
// allocation-free hot paths (fpva/allocfree), context plumbing
// (fpva/ctxflow), the cmd/+examples/ public-API import boundary
// (fpva/apiboundary) — plus stdlib ports of the stock lostcancel and
// nilness checks. With -vet (default) it also runs `go vet`, so
// `go run ./cmd/fpvalint ./...` is the whole static story.
//
// Diagnostics print as file:line:col: message [fpva/analyzer]; the exit
// status is 1 when anything is found, 2 on usage or load errors.
// Suppress a finding with a positioned comment:
//
//	//lint:ignore fpva/<analyzer> <reason>
//
// See DESIGN.md, "Static invariants", for the rule catalog.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/apiboundary"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/detorder"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lostcancel"
	"repro/internal/analysis/nilness"
)

// registry lists every analyzer the driver knows, in report order.
var registry = []*analysis.Analyzer{
	apiboundary.Analyzer,
	detorder.Analyzer,
	allocfree.Analyzer,
	ctxflow.Analyzer,
	lostcancel.Analyzer,
	nilness.Analyzer,
}

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fpvalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	vet := fs.Bool("vet", true, "also run `go vet` on the same patterns")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fpvalint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range registry {
			status := ""
			if a.Disabled != "" {
				status = " (disabled: " + a.Disabled + ")"
			}
			fmt.Fprintf(stdout, "fpva/%s%s\n    %s\n", a.Name, status, a.Doc)
		}
		return 0
	}

	analyzers := registry
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(registry))
		for _, a := range registry {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimPrefix(strings.TrimSpace(name), "fpva/")
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "fpvalint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = dir
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fpvalint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "fpvalint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		failed = true
		fset := pkgs[0].Fset
		cwd, _ := os.Getwd()
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			name := pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
					name = rel
				}
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s [fpva/%s]\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
		}
	}
	if failed {
		return 1
	}
	return 0
}
