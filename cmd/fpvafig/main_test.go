package main

import (
	"context"
	"testing"
)

func TestRunFigureSelection(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, 0, ""); err == nil {
		t.Error("no selection: want error")
	}
	if err := run(ctx, 8, ""); err != nil {
		t.Errorf("fig 8: %v", err)
	}
	if err := run(ctx, 0, "5x5"); err != nil {
		t.Errorf("cuts: %v", err)
	}
	if err := run(ctx, 0, "unknown"); err == nil {
		t.Error("unknown case: want error")
	}
}
