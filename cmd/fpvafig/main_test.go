package main

import (
	"context"
	"strings"
	"testing"
)

// TestExitCodes: usage errors (no selection, bad flags) exit 2, runtime
// failures (unknown case) exit 1.
func TestExitCodes(t *testing.T) {
	ctx := context.Background()
	if got := exitCode(run(ctx, 0, "")); got != 2 {
		t.Errorf("no selection: exit %d, want 2", got)
	}
	if got := exitCode(run(ctx, 0, "unknown")); got != 1 {
		t.Errorf("unknown case: exit %d, want 1", got)
	}
	var errb strings.Builder
	if _, err := parseFlags([]string{"-nope"}, &errb); exitCode(err) != 2 {
		t.Errorf("bad flag: %v", err)
	}
	if _, err := parseFlags([]string{"stray"}, &errb); exitCode(err) != 2 {
		t.Errorf("stray arg: %v", err)
	}
	if _, err := parseFlags([]string{"-fig", "8"}, &errb); err != nil {
		t.Errorf("good flags: %v", err)
	}
}

func TestRunFigureSelection(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, 0, ""); err == nil {
		t.Error("no selection: want error")
	}
	if err := run(ctx, 8, ""); err != nil {
		t.Errorf("fig 8: %v", err)
	}
	if err := run(ctx, 0, "5x5"); err != nil {
		t.Errorf("cuts: %v", err)
	}
	if err := run(ctx, 0, "unknown"); err == nil {
		t.Error("unknown case: want error")
	}
}
