// Command fpvafig regenerates the paper's figures as ASCII diagrams:
//
//	fpvafig -fig 8     direct vs hierarchical flow paths on a full 10x10
//	fpvafig -fig 9     the flow paths of the 20x20 array with channels
//	                   and obstacles
//	fpvafig -cuts 5x5  the cut-sets of a benchmark array, one per diagram
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cutset"
	"repro/internal/flowpath"
	"repro/internal/grid"
	"repro/internal/render"
)

func main() {
	var (
		fig  = flag.Int("fig", 0, "figure number to regenerate (8 or 9)")
		cuts = flag.String("cuts", "", "render the cut-sets of a Table I array")
	)
	flag.Parse()
	if err := run(*fig, *cuts); err != nil {
		fmt.Fprintln(os.Stderr, "fpvafig:", err)
		os.Exit(1)
	}
}

func run(fig int, cuts string) error {
	switch {
	case fig == 8:
		return fig8()
	case fig == 9:
		return fig9()
	case cuts != "":
		return renderCuts(cuts)
	}
	return fmt.Errorf("specify -fig 8, -fig 9, or -cuts <case>")
}

func fig8() error {
	a, err := grid.NewStandard(10, 10)
	if err != nil {
		return err
	}
	direct, err := flowpath.Generate(a, flowpath.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 8(a) — direct model: %d flow paths on the full 10x10\n\n", len(direct.Paths))
	fmt.Println(render.Paths(a, direct.Paths))
	hier, err := flowpath.Generate(a, flowpath.Options{StripRows: 5, StripCols: 5})
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 8(b) — hierarchical model (5x5 blocks): %d flow paths\n\n", len(hier.Paths))
	fmt.Println(render.Paths(a, hier.Paths))
	fmt.Println(render.Legend())
	return nil
}

func fig9() error {
	c, err := bench.FindCase("20x20")
	if err != nil {
		return err
	}
	a, err := c.Build()
	if err != nil {
		return err
	}
	res, err := flowpath.Generate(a, flowpath.Options{StripRows: 5, StripCols: 5})
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 9 — %d flow paths covering the 20x20 array (%d valves) with channels and obstacles\n\n",
		len(res.Paths), a.NumNormal())
	fmt.Println(render.Paths(a, res.Paths))
	fmt.Println(render.Legend())
	return nil
}

func renderCuts(name string) error {
	c, err := bench.FindCase(name)
	if err != nil {
		return err
	}
	a, err := c.Build()
	if err != nil {
		return err
	}
	res, err := cutset.Generate(a, cutset.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%d cut-sets for %v\n\n", len(res.Cuts), a)
	for i, cut := range res.Cuts {
		fmt.Printf("cut %d (%d valves):\n%s\n", i, len(cut.Valves), render.Cut(a, cut))
	}
	fmt.Println(render.Legend())
	return nil
}
