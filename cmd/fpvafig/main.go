// Command fpvafig regenerates the paper's figures as ASCII diagrams, using
// only the public fpva package:
//
//	fpvafig -fig 8     direct vs hierarchical flow paths on a full 10x10
//	fpvafig -fig 9     the flow paths of the 20x20 array with channels
//	                   and obstacles
//	fpvafig -cuts 5x5  the cut-sets of a benchmark array, one per diagram
//
// Exit codes: 0 on success, 1 on runtime failure, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/cmd/internal/cli"
	"repro/fpva"
)

type options struct {
	fig  int
	cuts string
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	opt, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, opt.fig, opt.cuts); err != nil {
		fmt.Fprintln(stderr, "fpvafig:", err)
		return exitCode(err)
	}
	return 0
}

// usagef / exitCode alias the repo-wide CLI exit-code contract
// (cmd/internal/cli): usage 2, deadline 2, runtime 1, success 0.
var (
	usagef   = cli.Usagef
	exitCode = cli.ExitCode
)

func parseFlags(args []string, stderr io.Writer) (options, error) {
	var opt options
	fs := flag.NewFlagSet("fpvafig", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.IntVar(&opt.fig, "fig", 0, "figure number to regenerate (8 or 9)")
	fs.StringVar(&opt.cuts, "cuts", "", "render the cut-sets of a Table I array")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return opt, err
		}
		return opt, usagef("%v", err)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fpvafig: unexpected argument %q\n", fs.Arg(0))
		return opt, usagef("unexpected argument %q", fs.Arg(0))
	}
	return opt, nil
}

func run(ctx context.Context, fig int, cuts string) error {
	switch {
	case fig == 8:
		return fig8(ctx)
	case fig == 9:
		return fig9(ctx)
	case cuts != "":
		return renderCuts(ctx, cuts)
	}
	return usagef("specify -fig 8, -fig 9, or -cuts <case>")
}

// pathPlan generates flow paths only (leakage skipped: the figures draw the
// stuck-at-0 family).
func pathPlan(ctx context.Context, a *fpva.Array, opts ...fpva.GenOption) (*fpva.Plan, error) {
	return fpva.Generate(ctx, a, append(opts, fpva.WithoutLeakage())...)
}

func fig8(ctx context.Context) error {
	a, err := fpva.NewArray(10, 10)
	if err != nil {
		return err
	}
	direct, err := pathPlan(ctx, a, fpva.WithDirectModel())
	if err != nil {
		return err
	}
	out, err := direct.RenderPaths()
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 8(a) — direct model: %d flow paths on the full 10x10\n\n", direct.Stats().NP)
	fmt.Println(out)
	hier, err := pathPlan(ctx, a)
	if err != nil {
		return err
	}
	if out, err = hier.RenderPaths(); err != nil {
		return err
	}
	fmt.Printf("Fig. 8(b) — hierarchical model (5x5 blocks): %d flow paths\n\n", hier.Stats().NP)
	fmt.Println(out)
	fmt.Println(fpva.RenderLegend())
	return nil
}

func fig9(ctx context.Context) error {
	a, err := fpva.BenchmarkArray("20x20")
	if err != nil {
		return err
	}
	plan, err := pathPlan(ctx, a)
	if err != nil {
		return err
	}
	out, err := plan.RenderPaths()
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 9 — %d flow paths covering the 20x20 array (%d valves) with channels and obstacles\n\n",
		plan.Stats().NP, a.NumValves())
	fmt.Println(out)
	fmt.Println(fpva.RenderLegend())
	return nil
}

func renderCuts(ctx context.Context, name string) error {
	a, err := fpva.BenchmarkArray(name)
	if err != nil {
		return err
	}
	plan, err := pathPlan(ctx, a)
	if err != nil {
		return err
	}
	fmt.Printf("%d cut-sets for %v\n\n", plan.NumCuts(), a)
	for i := 0; i < plan.NumCuts(); i++ {
		diagram, err := plan.RenderCut(i)
		if err != nil {
			return err
		}
		fmt.Printf("cut %d (%d valves):\n%s\n", i, len(plan.Cut(i)), diagram)
	}
	fmt.Println(fpva.RenderLegend())
	return nil
}
