// Command fpvaworker is the solver-worker subprocess of the
// out-of-process executor (fpva.WithSolverExecutor(ExecSubprocess)). It
// is not meant to be run by hand: a supervising service (fpvad, or any
// embedder of fpva.Service) spawns one fpvaworker per pool slot and
// speaks the length-prefixed frame protocol over the worker's
// stdin/stdout — solve envelopes in, phase events and plan wire bytes
// out. Stdout is reserved for frames; diagnostics go to stderr.
//
// Usage:
//
//	fpvaworker                    serve solves on stdin/stdout until EOF
//	fpvaworker -mem-limit-mb 512  set a soft Go heap ceiling (runtime/debug.SetMemoryLimit)
//
// The -mem-limit-mb ceiling is soft: the runtime sheds memory to stay
// under it, and the supervisor enforces a hard RSS backstop (at twice
// the soft limit) by killing the worker, which fails only the job the
// worker was running.
//
// Exit codes: 0 on clean shutdown (supervisor closed stdin), 1 on a
// protocol or I/O failure, 2 on a usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"repro/cmd/internal/cli"
	"repro/fpva"
)

type options struct {
	memLimitMB int
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	opt, err := parseFlags(args, stderr)
	if errors.Is(err, flag.ErrHelp) {
		return 0
	}
	if err != nil {
		return 2
	}
	if opt.memLimitMB > 0 {
		debug.SetMemoryLimit(int64(opt.memLimitMB) << 20)
	}
	// No signal handling: the worker's lifecycle belongs to its
	// supervisor, which drains it by closing stdin (graceful) or kills it
	// (deadline / memory backstop). A terminal-delivered SIGINT reaching
	// the whole process group kills the worker along with the daemon,
	// which is the correct collective shutdown.
	if err := fpva.ServeSolverWorker(context.Background(), stdin, stdout); err != nil {
		fmt.Fprintln(stderr, "fpvaworker:", err)
		return cli.ExitCode(err)
	}
	return 0
}

func parseFlags(args []string, stderr io.Writer) (options, error) {
	var opt options
	fs := flag.NewFlagSet("fpvaworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.IntVar(&opt.memLimitMB, "mem-limit-mb", 0, "soft Go memory limit in MiB (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return opt, err
		}
		return opt, cli.Usagef("%v", err)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "fpvaworker: unexpected argument %q\n", fs.Arg(0))
		return opt, cli.Usagef("unexpected argument %q", fs.Arg(0))
	}
	if opt.memLimitMB < 0 {
		fmt.Fprintln(stderr, "fpvaworker: -mem-limit-mb must be >= 0")
		return opt, cli.Usagef("-mem-limit-mb must be >= 0")
	}
	return opt, nil
}
