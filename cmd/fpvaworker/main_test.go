package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestFlagErrors: the repo-wide exit-code contract — usage mistakes exit
// 2, -h exits 0 after printing help.
func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-nope"}, 2},
		{"extra argument", []string{"stray"}, 2},
		{"negative mem limit", []string{"-mem-limit-mb", "-1"}, 2},
		{"help", []string{"-h"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := realMain(tc.args, strings.NewReader(""), &out, &errb); got != tc.code {
				t.Errorf("realMain(%q) = %d, want %d (stderr: %s)", tc.args, got, tc.code, errb.String())
			}
			if out.Len() != 0 {
				t.Errorf("wrote %d bytes to stdout on a non-serving run; stdout is reserved for frames", out.Len())
			}
		})
	}
}

// TestHelloThenCleanDrain: a served run speaks the handshake first and
// exits 0 when the supervisor closes stdin. The expected bytes are the
// wire-protocol hello frame: type 1, big-endian length 6, "fpvaw1".
func TestHelloThenCleanDrain(t *testing.T) {
	hello := []byte{1, 0, 0, 0, 6, 'f', 'p', 'v', 'a', 'w', '1'}
	var out, errb bytes.Buffer
	if got := realMain(nil, strings.NewReader(""), &out, &errb); got != 0 {
		t.Fatalf("realMain = %d, want 0 (stderr: %s)", got, errb.String())
	}
	if !bytes.Equal(out.Bytes(), hello) {
		t.Errorf("stdout = %v, want the hello frame %v", out.Bytes(), hello)
	}
}

// TestMemLimitFlagAccepted: the soft ceiling parses and the worker still
// serves (the limit itself is a runtime knob, observable only under
// memory pressure).
func TestMemLimitFlagAccepted(t *testing.T) {
	var out bytes.Buffer
	if got := realMain([]string{"-mem-limit-mb", "512"}, strings.NewReader(""), &out, io.Discard); got != 0 {
		t.Fatalf("realMain = %d, want 0", got)
	}
	if out.Len() == 0 {
		t.Error("served run produced no frames")
	}
}
